//! The overlapped pipeline engine behind [`ShuffleMode::Pipelined`].
//!
//! The pass-based modes run map → shuffle → reduce as strict phases: the
//! first reduce byte is processed only after the last map task finishes.
//! This module replaces the passes with a **stage graph of scoped worker
//! threads connected by bounded MPSC channels** (hand-rolled over
//! `std::sync::Mutex` + `Condvar`, no external runtime — the engine stays
//! dependency-free and offline-friendly):
//!
//! ```text
//!   inputs ──► task queue (atomic cursor)
//!                │ pulled dynamically
//!      ┌─────────┼─────────┐
//!   mapper 1  mapper 2 … mapper T          T = map_threads
//!      │  map_one → route → partition-tagged Block { seq, records }
//!      │  (emission/byte accounting into shared atomics)
//!      └───┬────────┬──────┘
//!     bounded channel per consumer group (capacity = pipeline_depth)
//!          │        │        ◄── back-pressure: a full channel blocks
//!          ▼        ▼            the sender until the consumer drains
//!   consumer 1 … consumer G               G = min(T, n_reducers)
//!      │  per-partition byte accounting + incremental reassembly into
//!      │  seq-ordered runs (overlaps live map tasks — the pipelining)
//!      │  … channels close when every mapper is done …
//!      │  finalize: k-way merge each partition's runs, group, reduce
//!      │  (static: own range only; stealing: shared LPT finalize queue)
//!      ▼
//!   per-partition outputs, slotted and concatenated in partition order
//! ```
//!
//! **Overlap.** While mapper threads are still producing, consumer threads
//! already drain blocks, account bytes per reducer, and reassemble
//! partitions — the shuffle and the reduce-side merge overlap the map
//! phase exactly the way a real MapReduce copy/merge phase shadows its
//! mappers. `reduce()` itself must still wait for its partition to be
//! complete (any map task may yet route a record anywhere — that barrier
//! is inherent to correct MapReduce semantics), but it runs concurrently
//! across consumer groups the moment the channels close.
//! [`PipelineMetrics`] reports how much overlap a run actually achieved.
//!
//! **Back-pressure.** Every channel holds at most
//! [`ClusterConfig::pipeline_depth`] blocks; a full channel blocks its
//! sender. Peak resident blocks are therefore bounded by
//! `pipeline_depth × consumer groups` (the gauge increments inside the
//! sending channel's critical section, so the recorded
//! `peak_inflight_blocks` respects the same bound), giving the pipelined
//! mode a memory ceiling like `Streaming`'s without its recomputation.
//!
//! **Determinism.** Mappers pull tasks dynamically, so blocks arrive at a
//! consumer in arbitrary order — but every block carries the index of the
//! map task that produced it, and each partition is kept as a list of
//! **sequence-ordered runs** built incrementally while the blocks arrive:
//! a block whose `seq` extends the tail run is appended in place, an
//! inversion opens a new run. Since mappers hand out tasks in increasing
//! order, arrivals are nearly sorted and the run count stays tiny; the
//! finalize step then restores exact (task, emission) order with a k-way
//! merge instead of one big sort — the sort work happens inside the
//! overlap window the engine exists to create. Combined with commutative
//! atomic byte accounting, the engine produces outputs and a
//! deterministic metrics subset bit-identical to
//! [`ShuffleMode::Materialized`], for every thread count, pipeline depth,
//! and [`FinalizeMode`]; only [`PipelineMetrics`] varies run to run.
//!
//! **Finalize scheduling.** Once the channels close, each completed
//! partition still needs its merge + reduce. Under
//! [`FinalizeMode::Static`] every consumer finalizes exactly the
//! contiguous range it drained — which serializes a hot group's whole
//! range on one thread while its peers idle, precisely the skew pathology
//! the paper's load-balancing thesis targets. Under
//! [`FinalizeMode::Stealing`] consumers publish their completed
//! partitions into a shared `FinalizeQueue` (popped
//! largest-bytes-first, the LPT rule the simulated scheduler itself
//! uses) and then *all* consumer threads steal work from it until the
//! queue is dry. Outputs stay slotted by partition index, so the
//! `JobOutput` is bit-identical either way; `stolen_partitions` and the
//! per-group finalize spans in [`PipelineMetrics`] record how much work
//! migrated.
//!
//! **Error paths.** A routing error does not tear the pipeline down
//! mid-flight: the offending task records its error keyed by task index
//! (the *lowest* index wins, matching the error the sequential pass would
//! have hit first), mappers skip later tasks, consumers keep draining
//! until the channels close — nobody blocks on a full channel, no thread
//! leaks (all are scoped), and the job returns the same [`SimError`] the
//! pass-based modes return. Capacity enforcement runs after the map stage
//! completes, on the same totals, in the same reducer order. *Panics* in
//! user code propagate rather than deadlock: both channel endpoints
//! detach via RAII guards, so an unwinding mapper still signals
//! end-of-stream and an unwinding consumer unblocks any sender stuck on
//! its full channel; the scope join then re-raises the panic, exactly as
//! the pass-based modes do.
//!
//! **Fault tolerance.** With a [`crate::FaultPlan`] configured, every map
//! task and finalize runs the fault-layer attempt loop first
//! (`Job::fault_verdict`): injected faults are *check-first* — they
//! preempt the attempt before any user code runs and flow through
//! `Result` values, never unwinding — so the RAII abort guards above stay
//! reserved for true user-code panics. A task that exhausts its budget is
//! dead-lettered (capture mode) or recorded as the job error keyed by the
//! lowest task index / partition, matching the sequential pass. With
//! [`crate::ClusterConfig::speculation`] on, idle mappers re-execute the
//! largest claimed-but-unresolved map tasks and idle consumers re-execute
//! the largest in-flight finalize items (both ranked by the scheduler's
//! own LPT order); a compare-and-swap per task picks exactly one winner,
//! and since both copies compute identical results, outputs stay
//! bit-identical no matter who wins.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

use crate::checkpoint::CheckpointSession;
use crate::cluster::{FaultStage, FinalizeMode, Schedule, TaskCost};
use crate::error::SimError;
use crate::job::{DlqEntry, Job, ReducePhase, TaskVerdict};
use crate::metrics::{JobMetrics, PipelineMetrics};
use crate::record::ByteSized;
use crate::router::Router;
use crate::sink::PartitionSink;
use crate::spill::{self, SpillCodec, SpillError, SpillReader, SpilledRun};
use crate::traits::{Mapper, Reducer};

#[cfg(doc)]
use crate::cluster::{ClusterConfig, ShuffleMode};

/// Gauge of blocks currently resident in the stage channels, with a
/// high-water mark. Updated inside the owning channel's critical section,
/// which is what keeps `peak ≤ Σ channel capacities` exact (see the
/// module docs).
#[derive(Default)]
struct InflightGauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl InflightGauge {
    fn raise(&self) {
        let now = self.current.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn lower(&self) {
        self.current.fetch_sub(1, Ordering::Relaxed);
    }
}

struct QueueState<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

/// A bounded multi-producer single-consumer channel built from
/// `Mutex` + two `Condvar`s. `send` blocks while the queue is at
/// capacity (the back-pressure), `recv` blocks while it is empty and
/// returns `None` once every sender has detached and the queue drained.
///
/// Both endpoints detach through RAII guards ([`SenderGuard`],
/// [`ReceiverGuard`]) so that a *panic* in user code (a mapper, reducer,
/// or `ByteSized` impl) unwinds through the detach path instead of
/// leaving the other side blocked forever: a dead receiver turns `send`
/// into a no-op, a dead sender still counts down `senders`. The panic
/// then propagates normally when the scope joins the thread.
struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize, senders: usize) -> Self {
        assert!(capacity >= 1, "validated by ClusterConfig::validate");
        BoundedQueue {
            capacity,
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(capacity),
                senders,
                receiver_alive: true,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    fn send(&self, item: T, gauge: &InflightGauge) {
        let mut state = self.state.lock().expect("pipeline channel poisoned");
        while state.queue.len() >= self.capacity && state.receiver_alive {
            state = self
                .not_full
                .wait(state)
                .expect("pipeline channel poisoned");
        }
        if !state.receiver_alive {
            // The consumer died mid-unwind; the job is about to re-raise
            // its panic, so the block is dropped rather than queued.
            return;
        }
        state.queue.push_back(item);
        gauge.raise();
        drop(state);
        self.not_empty.notify_one();
    }

    fn recv(&self, gauge: &InflightGauge) -> Option<T> {
        let mut state = self.state.lock().expect("pipeline channel poisoned");
        loop {
            if let Some(item) = state.queue.pop_front() {
                gauge.lower();
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.senders == 0 {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .expect("pipeline channel poisoned");
        }
    }

    /// Detaches one sender; the last detachment wakes the consumer so it
    /// can observe end-of-stream instead of waiting forever. Runs from
    /// [`SenderGuard::drop`] — possibly mid-unwind — so it tolerates a
    /// poisoned lock instead of double-panicking.
    fn close_sender(&self) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.senders -= 1;
        let closed = state.senders == 0;
        drop(state);
        if closed {
            self.not_empty.notify_all();
        }
    }

    /// Marks the receiver dead (runs from [`ReceiverGuard::drop`],
    /// possibly mid-unwind) and wakes every sender blocked on a full
    /// queue so none of them waits on a consumer that will never drain.
    fn close_receiver(&self) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.receiver_alive = false;
        drop(state);
        self.not_full.notify_all();
    }
}

/// Detaches a mapper from every stage channel on drop — including panic
/// unwinds, which is the point: without it a panicking mapper never
/// closes its channels and every consumer waits forever.
struct SenderGuard<'a, T>(&'a [BoundedQueue<T>]);

impl<T> Drop for SenderGuard<'_, T> {
    fn drop(&mut self) {
        for channel in self.0 {
            channel.close_sender();
        }
    }
}

/// Marks a consumer's channel receiver dead on drop, so mappers blocked
/// on a full channel resume (their sends become no-ops) if the consumer
/// panics instead of draining to end-of-stream.
struct ReceiverGuard<'a, T>(&'a BoundedQueue<T>);

impl<T> Drop for ReceiverGuard<'_, T> {
    fn drop(&mut self) {
        self.0.close_receiver();
    }
}

/// The shared work-stealing finalize queue of [`FinalizeMode::Stealing`]:
/// consumers publish `(priority, item)` pairs as their channels close and
/// every consumer thread steals the highest-priority (largest-bytes)
/// pending item — LPT over finalize tasks, so a hot partition's neighbors
/// migrate to idle threads instead of queueing behind it.
///
/// `steal` blocks while the queue is empty but publishers remain, and
/// returns `None` once every publisher finished and the queue drained —
/// or immediately after [`FinalizeQueue::abort`], which a panicking
/// consumer's [`FinalizePublisherGuard`] triggers so its peers drain out
/// instead of waiting forever on a publisher that will never arrive.
struct FinalizeQueue<T> {
    state: Mutex<FinalizeQueueState<T>>,
    work_ready: Condvar,
}

struct FinalizeQueueState<T> {
    items: Vec<(u64, T)>,
    /// Items popped by `steal` but not yet resolved — the candidate pool
    /// for speculative re-execution. Tracked only when the run has
    /// speculation enabled (the items are `Arc`-shared there, so a clone
    /// is a pointer bump); empty otherwise.
    in_progress: Vec<(u64, T)>,
    track_in_progress: bool,
    publishers: usize,
    aborted: bool,
}

impl<T> FinalizeQueue<T> {
    fn new(publishers: usize, track_in_progress: bool) -> Self {
        FinalizeQueue {
            state: Mutex::new(FinalizeQueueState {
                items: Vec::new(),
                in_progress: Vec::new(),
                track_in_progress,
                publishers,
                aborted: false,
            }),
            work_ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FinalizeQueueState<T>> {
        // Tolerate poisoning: the abort path runs mid-unwind and must not
        // double-panic; normal paths never panic while holding this lock.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn publish(&self, batch: Vec<(u64, T)>) {
        if batch.is_empty() {
            return;
        }
        let mut state = self.lock();
        state.items.extend(batch);
        drop(state);
        self.work_ready.notify_all();
    }

    /// Counts one publisher down; the last one wakes every stealer so it
    /// can observe end-of-work instead of waiting forever.
    fn finish_publishing(&self) {
        let mut state = self.lock();
        state.publishers -= 1;
        let done = state.publishers == 0;
        drop(state);
        if done {
            self.work_ready.notify_all();
        }
    }

    /// Poisons the queue (a consumer is unwinding): stealers drain out
    /// with `None` immediately. The job re-raises the panic at join.
    fn abort(&self) {
        self.lock().aborted = true;
        self.work_ready.notify_all();
    }
}

impl<T: Clone> FinalizeQueue<T> {
    fn steal(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if state.aborted {
                return None;
            }
            // Largest priority first; earliest-published wins ties so the
            // pop order is reproducible for equal-sized partitions.
            let mut best: Option<(usize, u64)> = None;
            for (idx, &(priority, _)) in state.items.iter().enumerate() {
                if best.is_none_or(|(_, b)| priority > b) {
                    best = Some((idx, priority));
                }
            }
            if let Some((idx, _)) = best {
                let (priority, item) = state.items.swap_remove(idx);
                if state.track_in_progress {
                    state.in_progress.push((priority, item.clone()));
                }
                return Some(item);
            }
            if state.publishers == 0 {
                return None;
            }
            state = self
                .work_ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Snapshot of the in-flight items, largest priority first — the LPT
    /// rank a consumer speculates in once the queue itself is dry. The
    /// caller filters out items whose partition has already resolved.
    fn speculation_candidates(&self) -> Vec<T> {
        let state = self.lock();
        let mut entries: Vec<(u64, T)> = state.in_progress.to_vec();
        drop(state);
        entries.sort_by_key(|entry| std::cmp::Reverse(entry.0));
        entries.into_iter().map(|(_, item)| item).collect()
    }
}

/// Ties a consumer thread to the finalize queue for the duration of its
/// finalize phase. Dropping it *without* [`FinalizePublisherGuard::finish`]
/// means the consumer is unwinding before it could publish — the guard
/// aborts the queue so sibling consumers blocked in `steal` drain out
/// (mirroring what [`ReceiverGuard`] does for the stage channels).
struct FinalizePublisherGuard<'a, T> {
    queue: &'a FinalizeQueue<T>,
    finished: bool,
}

impl<'a, T> FinalizePublisherGuard<'a, T> {
    fn new(queue: &'a FinalizeQueue<T>) -> Self {
        FinalizePublisherGuard {
            queue,
            finished: false,
        }
    }

    fn finish(&mut self) {
        self.finished = true;
        self.queue.finish_publishing();
    }
}

impl<T> Drop for FinalizePublisherGuard<'_, T> {
    fn drop(&mut self) {
        if !self.finished {
            self.queue.abort();
        }
    }
}

/// A record tagged with its destination reducer partition (mapper side).
type Tagged<M> = (usize, <M as Mapper>::Key, <M as Mapper>::Value);

/// A record tagged with the index of the map task that produced it
/// (consumer side, awaiting sequence-ordered reassembly).
type Seqed<M> = (usize, <M as Mapper>::Key, <M as Mapper>::Value);

/// One map task's records for one consumer group, tagged with the reducer
/// partition of every record and the producing task's index (`seq`) for
/// deterministic reassembly.
struct Block<K, V> {
    seq: usize,
    records: Vec<(usize, K, V)>,
}

/// A sequence-ordered run of one partition's records: `seq` never
/// decreases within a run, and records sharing a `seq` sit contiguously
/// in emission order (they came from the same block).
type Run<M> = Vec<Seqed<M>>;

/// One completed partition's drained runs, queued for a (possibly stolen)
/// finalize. `owner` is the consumer group that drained it, which is what
/// `stolen_partitions` is counted against. Under a memory budget some of
/// the partition's runs live on disk: the [`SpilledRun`] handles travel
/// with the item (cloning one is an `Arc` bump), so stolen and
/// speculative finalizes stream the same temp files the owner sealed.
struct FinalizeItem<M: Mapper> {
    partition: usize,
    owner: usize,
    runs: Vec<Run<M>>,
    spilled: Vec<SpilledRun>,
}

/// One partition's buffered state while its consumer drains: the resident
/// seq-ordered runs (with per-run `ByteSized` totals, the spill policy's
/// ranking key) plus the runs already sealed to disk. Only resident runs
/// grow; a spilled run is immutable — the next block for its partition
/// simply opens (or extends) a resident run, and since every `seq` still
/// lives in exactly one run, resident or spilled, the finalize merge stays
/// a total order.
struct PartitionBuffer<M: Mapper> {
    runs: Vec<Run<M>>,
    run_bytes: Vec<u64>,
    spilled: Vec<SpilledRun>,
}

/// The merge + reduce result of one partition, slotted back into global
/// partition order by [`Job::run_pipelined`]. Carries the fault-layer
/// disposition too: a dead-lettered partition has `dlq_attempts` set (and
/// no outputs), an exhausted one under `Fail` carries `failed`.
struct FinalizedPartition<Out> {
    partition: usize,
    distinct_keys: u64,
    outputs: Vec<Out>,
    /// `Some(attempts)` when the partition exhausted its retry budget
    /// under [`crate::DlqMode::Capture`].
    dlq_attempts: Option<u32>,
    /// The `RetriesExhausted` error under [`crate::DlqMode::Fail`], or a
    /// [`SimError::SpillIo`] from streaming a spilled run back.
    failed: Option<SimError>,
    /// Injected faults this partition's winning finalize absorbed.
    retries: u64,
    /// Runs (in-memory + spilled) this partition's merge consumed — the
    /// external merge's fan-in.
    fanin: u64,
    /// The outputs came from a verified checkpoint rather than a fresh
    /// merge + reduce; the caller must not re-record such a partition.
    from_checkpoint: bool,
}

/// Everything one consumer hands back: per owned partition (indexed from
/// `first_partition`) the byte/record accounting, the partitions this
/// *thread* finalized (its own under static finalize; whatever it stole
/// under stealing), plus the group's overlap observation and finalize
/// wall-clock span.
struct GroupResult<Out> {
    first_partition: usize,
    records: Vec<u64>,
    value_bytes: Vec<u64>,
    total_bytes: Vec<u64>,
    finalized: Vec<FinalizedPartition<Out>>,
    overlap_blocks: u64,
    stolen: u64,
    finalize_start: f64,
    finalize_end: f64,
    spilled_runs: u64,
    spilled_bytes: u64,
    /// Highest buffered residency this group reached after each block's
    /// budget enforcement (the per-group bound `memory_budget` states).
    peak_buffered: u64,
}

/// K-way merges a partition's sequence-ordered runs back into exact
/// (task, emission) arrival order — the order the materialized pass
/// produces — and strips the sequence tags. Each `seq` lives in exactly
/// one run (a map task emits one block per group), so a min-heap over the
/// run heads is a total order and ties cannot occur across runs.
fn merge_runs<K, V>(mut runs: Vec<Vec<(usize, K, V)>>) -> Vec<(K, V)> {
    if runs.len() <= 1 {
        return runs
            .pop()
            .unwrap_or_default()
            .into_iter()
            .map(|(_, k, v)| (k, v))
            .collect();
    }
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut merged: Vec<(K, V)> = Vec::with_capacity(total);
    let mut iters: Vec<std::vec::IntoIter<(usize, K, V)>> =
        runs.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<(usize, K, V)>> = iters.iter_mut().map(Iterator::next).collect();
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> = heads
        .iter()
        .enumerate()
        .filter_map(|(run, head)| head.as_ref().map(|&(seq, _, _)| Reverse((seq, run))))
        .collect();
    while let Some(Reverse((_, run))) = heap.pop() {
        let (_, key, value) = heads[run].take().expect("heap entries have a live head");
        merged.push((key, value));
        heads[run] = iters[run].next();
        if let Some(&(seq, _, _)) = heads[run].as_ref() {
            heap.push(Reverse((seq, run)));
        }
    }
    merged
}

/// One run feeding the external merge: either resident records or a
/// streaming reader over a spilled temp file. Disk sources yield the
/// records the owner sealed, in the same seq order, so the merge cannot
/// tell (and the output cannot reflect) where a run lived.
enum RunSource<K, V> {
    Mem(std::vec::IntoIter<(usize, K, V)>),
    Disk(SpillReader<K, V>),
}

impl<K: SpillCodec, V: SpillCodec> RunSource<K, V> {
    fn next_record(&mut self) -> Result<Option<(usize, K, V)>, SpillError> {
        match self {
            RunSource::Mem(iter) => Ok(iter.next()),
            RunSource::Disk(reader) => reader.next_record().transpose(),
        }
    }
}

/// The external k-way merge: identical order contract to [`merge_runs`]
/// (each `seq` lives in exactly one run, so the min-heap over run heads
/// is a total order), but run heads stream from a mix of in-memory and
/// on-disk runs — at most one resident record per spilled run. Disk
/// errors surface as values for the caller to lift into
/// [`SimError::SpillIo`].
fn merge_mixed<K: SpillCodec, V: SpillCodec>(
    runs: Vec<Vec<(usize, K, V)>>,
    spilled: &[SpilledRun],
) -> Result<Vec<(K, V)>, SpillError> {
    if spilled.is_empty() {
        return Ok(merge_runs(runs));
    }
    let total: usize = runs.iter().map(Vec::len).sum::<usize>()
        + spilled.iter().map(|s| s.records as usize).sum::<usize>();
    let mut sources: Vec<RunSource<K, V>> = Vec::with_capacity(runs.len() + spilled.len());
    sources.extend(runs.into_iter().map(|run| RunSource::Mem(run.into_iter())));
    for run in spilled {
        sources.push(RunSource::Disk(SpillReader::open(run)?));
    }
    let mut heads: Vec<Option<(usize, K, V)>> = Vec::with_capacity(sources.len());
    for source in &mut sources {
        heads.push(source.next_record()?);
    }
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> = heads
        .iter()
        .enumerate()
        .filter_map(|(src, head)| head.as_ref().map(|&(seq, _, _)| Reverse((seq, src))))
        .collect();
    let mut merged: Vec<(K, V)> = Vec::with_capacity(total);
    while let Some(Reverse((_, src))) = heap.pop() {
        let (_, key, value) = heads[src].take().expect("heap entries have a live head");
        merged.push((key, value));
        heads[src] = sources[src].next_record()?;
        if let Some(&(seq, _, _)) = heads[src].as_ref() {
            heap.push(Reverse((seq, src)));
        }
    }
    Ok(merged)
}

/// Per-map-task resolution states for speculative re-execution: a task is
/// `PENDING` until a primary mapper claims it, `CLAIMED` while (at least)
/// the primary executes it, and `RESOLVED` once one copy — primary or
/// speculative — won the compare-and-swap and published its results.
const TASK_PENDING: u8 = 0;
const TASK_CLAIMED: u8 = 1;
const TASK_RESOLVED: u8 = 2;

/// Shared mutable state of one pipelined run (everything the stages
/// coordinate through besides the channels themselves).
struct Coordination {
    /// Next input index to map — the dynamic task queue.
    next_task: AtomicUsize,
    /// Map tasks whose map + route work is complete — incremented
    /// *before* the task's blocks are sent, so `< n_inputs` means real
    /// map work is still in flight, which is exactly what the overlap
    /// counter samples (a final task's own blocks are not overlap).
    tasks_done: AtomicUsize,
    /// Lowest task index that hit a routing error or exhausted its retry
    /// budget (`usize::MAX` = none); mappers skip tasks above it so the
    /// pipeline drains fast.
    error_seq: AtomicUsize,
    /// The error carried by `error_seq`'s task.
    first_error: Mutex<Option<SimError>>,
    /// Lowest reducer partition whose finalize exhausted its retry budget
    /// under `Fail` mode — checked after the map error and capacity, the
    /// same precedence the sequential pass applies.
    reduce_error: Mutex<Option<(usize, SimError)>>,
    records_emitted: AtomicU64,
    records_shuffled: AtomicU64,
    bytes_shuffled: AtomicU64,
    blocks_sent: AtomicU64,
    map_retries: AtomicU64,
    reduce_retries: AtomicU64,
    spec_launches: AtomicU64,
    spec_wins: AtomicU64,
    /// Map-stage dead-letter entries (reduce-stage ones travel through
    /// [`FinalizedPartition`] so they stay slotted by partition).
    dlq: Mutex<Vec<DlqEntry>>,
    /// Per-map-task `TASK_*` resolution slots; the winner of the
    /// compare-and-swap to `TASK_RESOLVED` is the only copy that counts
    /// metrics, sends blocks, or records errors for its task.
    task_state: Vec<AtomicU8>,
    /// Per-partition finalize resolution slots (used by the stealing
    /// finalize so a primary and a speculative copy publish exactly one
    /// result per partition).
    finalize_resolved: Vec<AtomicBool>,
    gauge: InflightGauge,
}

impl Coordination {
    fn new(n_inputs: usize, n_reducers: usize) -> Self {
        Coordination {
            next_task: AtomicUsize::new(0),
            tasks_done: AtomicUsize::new(0),
            error_seq: AtomicUsize::new(usize::MAX),
            first_error: Mutex::new(None),
            reduce_error: Mutex::new(None),
            records_emitted: AtomicU64::new(0),
            records_shuffled: AtomicU64::new(0),
            bytes_shuffled: AtomicU64::new(0),
            blocks_sent: AtomicU64::new(0),
            map_retries: AtomicU64::new(0),
            reduce_retries: AtomicU64::new(0),
            spec_launches: AtomicU64::new(0),
            spec_wins: AtomicU64::new(0),
            dlq: Mutex::new(Vec::new()),
            task_state: (0..n_inputs).map(|_| AtomicU8::new(TASK_PENDING)).collect(),
            finalize_resolved: (0..n_reducers).map(|_| AtomicBool::new(false)).collect(),
            gauge: InflightGauge::default(),
        }
    }

    /// Records a routing error, keeping the one from the lowest task
    /// index — the error the sequential pass would have reported.
    fn record_error(&self, task: usize, error: SimError) {
        let mut slot = self.first_error.lock().expect("error slot poisoned");
        let current = self.error_seq.load(Ordering::Relaxed);
        if task < current || slot.is_none() {
            *slot = Some(error);
        }
        self.error_seq.fetch_min(task, Ordering::Relaxed);
    }

    /// Records a reduce-stage exhaustion, keeping the lowest partition —
    /// the error the sequential pass, walking partitions in ascending
    /// order, would have reported first.
    fn record_reduce_error(&self, partition: usize, error: SimError) {
        let mut slot = self
            .reduce_error
            .lock()
            .expect("reduce error slot poisoned");
        match &*slot {
            Some((current, _)) if *current <= partition => {}
            _ => *slot = Some((partition, error)),
        }
    }
}

impl<M, R, Rt> Job<M, R, Rt>
where
    M: Mapper,
    R: Reducer<Key = M::Key, Value = M::Value>,
    Rt: Router<M::Key>,
{
    /// Runs the overlapped pipeline described in the [module docs](self).
    ///
    /// Returns the reduce outputs in (partition, key, arrival) order and
    /// the per-nonempty-partition reduce costs in partition order —
    /// bit-identical to [`Job::run_materialized`]'s — and fills
    /// `metrics.pipeline` with the run's overlap counters.
    pub(crate) fn run_pipelined(
        &self,
        inputs: &[M::In],
        metrics: &mut JobMetrics,
        ckpt: Option<&CheckpointSession<R::Out>>,
        sink: &dyn PartitionSink<R::Out>,
    ) -> ReducePhase<R::Out> {
        let n_inputs = inputs.len();
        let n_mappers = self.config.map_threads.max(1);
        // Groups own contiguous partition ranges of `per_group`. The
        // second div_ceil drops groups the rounding left empty (e.g. 5
        // reducers over 4 groups is 3 groups of 2, not 4).
        let group_target = n_mappers.min(self.n_reducers).max(1);
        let per_group = self.n_reducers.div_ceil(group_target);
        let n_groups = self.n_reducers.div_ceil(per_group);
        let depth = self.config.pipeline_depth;

        let channels: Vec<BoundedQueue<Block<M::Key, M::Value>>> = (0..n_groups)
            .map(|_| BoundedQueue::new(depth, n_mappers))
            .collect();
        let finalize_queue: FinalizeQueue<Arc<FinalizeItem<M>>> =
            FinalizeQueue::new(n_groups, self.config.speculation);
        let coord = Coordination::new(n_inputs, self.n_reducers);
        // Spill temp files report failed RAII deletes here; sampled into
        // `PipelineMetrics::spill_delete_errors` once every run (and its
        // readers) has dropped — which the scope join guarantees.
        let delete_errors = Arc::new(AtomicU64::new(0));
        let epoch = Instant::now();

        let (map_wall, group_results) = std::thread::scope(|scope| {
            let consumer_handles: Vec<_> = (0..n_groups)
                .map(|g| {
                    let channels = &channels;
                    let finalize_queue = &finalize_queue;
                    let coord = &coord;
                    let delete_errors = &delete_errors;
                    let job = self;
                    scope.spawn(move || {
                        job.consume_group(
                            g,
                            per_group,
                            n_inputs,
                            &channels[g],
                            finalize_queue,
                            coord,
                            &epoch,
                            ckpt,
                            delete_errors,
                        )
                    })
                })
                .collect();

            let mapper_handles: Vec<_> = (0..n_mappers)
                .map(|_| {
                    let channels = &channels;
                    let coord = &coord;
                    let job = self;
                    scope.spawn(move || {
                        job.map_stage(inputs, per_group, channels, coord);
                        epoch.elapsed().as_secs_f64()
                    })
                })
                .collect();

            let map_wall = mapper_handles
                .into_iter()
                .map(|h| h.join().expect("pipeline mapper panicked"))
                .fold(0.0f64, f64::max);
            let group_results: Vec<GroupResult<R::Out>> = consumer_handles
                .into_iter()
                .map(|h| h.join().expect("pipeline consumer panicked"))
                .collect();
            (map_wall, group_results)
        });

        if let Some(error) = coord
            .first_error
            .lock()
            .expect("error slot poisoned")
            .take()
        {
            return Err(error);
        }

        metrics.records_emitted = coord.records_emitted.load(Ordering::Relaxed);
        metrics.records_shuffled = coord.records_shuffled.load(Ordering::Relaxed);
        metrics.bytes_shuffled = coord.bytes_shuffled.load(Ordering::Relaxed);

        // Reassemble the per-partition results in partition order, exactly
        // like the materialized pass walks its partitions. Accounting is
        // slotted by each group's contiguous drain range; finalized
        // outputs carry their own partition index because under stealing
        // any thread may have finalized any partition.
        let mut reducer_value_bytes = vec![0u64; self.n_reducers];
        let mut reducer_total_bytes = vec![0u64; self.n_reducers];
        let mut reducer_records = vec![0u64; self.n_reducers];
        let mut slotted_outputs: Vec<Option<Vec<R::Out>>> =
            (0..self.n_reducers).map(|_| None).collect();
        let mut slotted_distinct = vec![0u64; self.n_reducers];
        let mut slotted_dlq: Vec<Option<u32>> = vec![None; self.n_reducers];
        let mut overlap_blocks = 0u64;
        let mut stolen_partitions = 0u64;
        let mut finalize_start = f64::INFINITY;
        let mut finalize_end = 0.0f64;
        let mut finalize_group_seconds = Vec::with_capacity(group_results.len());
        let mut spilled_runs = 0u64;
        let mut spilled_bytes = 0u64;
        // The budget is per consumer group, so the metric is the worst
        // single group's residency — the value the bound is stated over.
        let mut peak_buffered_bytes = 0u64;
        let mut merge_fanin = 0u64;
        for group in group_results {
            overlap_blocks += group.overlap_blocks;
            stolen_partitions += group.stolen;
            finalize_start = finalize_start.min(group.finalize_start);
            finalize_end = finalize_end.max(group.finalize_end);
            finalize_group_seconds.push((group.finalize_end - group.finalize_start).max(0.0));
            spilled_runs += group.spilled_runs;
            spilled_bytes += group.spilled_bytes;
            peak_buffered_bytes = peak_buffered_bytes.max(group.peak_buffered);
            for local in 0..group.records.len() {
                let p = group.first_partition + local;
                reducer_value_bytes[p] = group.value_bytes[local];
                reducer_total_bytes[p] = group.total_bytes[local];
                reducer_records[p] = group.records[local];
            }
            for part in group.finalized {
                merge_fanin = merge_fanin.max(part.fanin);
                slotted_distinct[part.partition] = part.distinct_keys;
                slotted_dlq[part.partition] = part.dlq_attempts;
                slotted_outputs[part.partition] = Some(part.outputs);
            }
        }

        self.account_capacity(metrics, &reducer_value_bytes)?;

        // Reduce-stage exhaustion under `Fail` mode: checked after the map
        // error and capacity, lowest partition first — the precedence the
        // sequential pass applies by construction.
        if let Some((_, error)) = coord
            .reduce_error
            .lock()
            .expect("reduce error slot poisoned")
            .take()
        {
            return Err(error);
        }

        let mut dlq = std::mem::take(&mut *coord.dlq.lock().expect("dlq slot poisoned"));
        let mut outputs: Vec<R::Out> = Vec::new();
        let mut reduce_costs: Vec<TaskCost> = Vec::new();
        for (p, slot) in slotted_outputs.into_iter().enumerate() {
            if reducer_records[p] == 0 {
                continue;
            }
            metrics.nonempty_reducers += 1;
            if let Some(attempts) = slotted_dlq[p] {
                // Dead-lettered partition: counted nonempty (data reached
                // it) but contributes no cost, keys, or outputs — exactly
                // like the pass-based modes.
                dlq.push(DlqEntry {
                    stage: FaultStage::Reduce,
                    index: p,
                    attempts,
                });
                continue;
            }
            metrics.distinct_keys += slotted_distinct[p];
            reduce_costs.push(TaskCost(
                self.config.reduce_task_seconds(reducer_total_bytes[p]),
            ));
            let part_outputs = slot.expect("every nonempty partition finalized");
            // The sink contract promises ascending partition order, so
            // delivery happens here — during deterministic reassembly —
            // not at the consumer threads' out-of-order finalize times.
            sink.partition(p, &part_outputs, slotted_distinct[p]);
            outputs.extend(part_outputs);
        }
        let max_span = finalize_group_seconds.iter().cloned().fold(0.0, f64::max);
        let mean_span =
            finalize_group_seconds.iter().sum::<f64>() / finalize_group_seconds.len().max(1) as f64;
        metrics.reducer_value_bytes = reducer_value_bytes;
        metrics.pipeline = PipelineMetrics {
            map_reduce_overlap_blocks: overlap_blocks,
            peak_inflight_blocks: coord.gauge.peak.load(Ordering::Relaxed),
            blocks_sent: coord.blocks_sent.load(Ordering::Relaxed),
            consumer_groups: n_groups as u64,
            stolen_partitions,
            map_wall_seconds: map_wall,
            reduce_wall_seconds: (finalize_end - finalize_start).max(0.0),
            finalize_group_seconds,
            finalize_imbalance: if mean_span > 0.0 {
                max_span / mean_span
            } else {
                1.0
            },
            wall_seconds: epoch.elapsed().as_secs_f64(),
            spilled_runs,
            spilled_bytes,
            peak_buffered_bytes,
            merge_fanin,
            // Checkpoint counters live on the session and are folded in
            // by `Job::run` after this literal, uniformly across modes.
            checkpoint_hits: 0,
            checkpoint_misses: 0,
            checkpoint_invalid: 0,
            spill_delete_errors: delete_errors.load(Ordering::Relaxed),
            orphans_reclaimed: 0,
            checkpoint_pruned: 0,
        };
        metrics.faults.map_retries = coord.map_retries.load(Ordering::Relaxed);
        metrics.faults.reduce_retries = coord.reduce_retries.load(Ordering::Relaxed);
        metrics.faults.speculative_launches = coord.spec_launches.load(Ordering::Relaxed);
        metrics.faults.speculative_wins = coord.spec_wins.load(Ordering::Relaxed);
        Ok((outputs, reduce_costs, dlq))
    }

    /// One mapper worker: pull tasks from the shared cursor, map and route
    /// them, and push partition-tagged blocks into the group channels.
    /// Detaches from every channel on exit so consumers observe
    /// end-of-stream once the last mapper finishes.
    fn map_stage(
        &self,
        inputs: &[M::In],
        per_group: usize,
        channels: &[BoundedQueue<Block<M::Key, M::Value>>],
        coord: &Coordination,
    ) {
        // Detach-on-drop covers both the normal exit and a panic in user
        // map/route/size code: either way the consumers observe
        // end-of-stream instead of blocking forever.
        let _detach = SenderGuard(channels);
        loop {
            let task = coord.next_task.fetch_add(1, Ordering::Relaxed);
            if task >= inputs.len() {
                break;
            }
            // A lower task already failed: its error wins whatever this
            // task would do, so skip the work and let the pipeline drain.
            if task > coord.error_seq.load(Ordering::Relaxed) {
                coord.tasks_done.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            coord.task_state[task].store(TASK_CLAIMED, Ordering::Release);
            self.execute_map_task(task, inputs, per_group, channels, coord, false);
        }
        // Cursor exhausted: this mapper is idle while peers may still be
        // stuck on stragglers. With speculation on, help them —
        // re-executing the largest claimed-but-unresolved tasks.
        if self.config.speculation {
            self.speculate_map_stragglers(inputs, per_group, channels, coord);
        }
    }

    /// Speculative re-execution of in-flight map tasks, ranked
    /// largest-simulated-cost-first via the same LPT order the cluster
    /// scheduler uses. Each pass resolves at least one claimed task (ours
    /// or the primary's finish), so the loop terminates once every task
    /// is resolved; mappers and speculators compute identical results, so
    /// whoever wins the resolution race publishes the same blocks.
    fn speculate_map_stragglers(
        &self,
        inputs: &[M::In],
        per_group: usize,
        channels: &[BoundedQueue<Block<M::Key, M::Value>>],
        coord: &Coordination,
    ) {
        loop {
            let claimed: Vec<usize> = (0..inputs.len())
                .filter(|&t| coord.task_state[t].load(Ordering::Acquire) == TASK_CLAIMED)
                .collect();
            if claimed.is_empty() {
                return;
            }
            let costs: Vec<TaskCost> = claimed
                .iter()
                .map(|&t| {
                    TaskCost(
                        self.config
                            .map_task_seconds(self.mapper.cost_bytes(&inputs[t])),
                    )
                })
                .collect();
            let task = claimed[Schedule::lpt_order(&costs)[0]];
            coord.spec_launches.fetch_add(1, Ordering::Relaxed);
            self.execute_map_task(task, inputs, per_group, channels, coord, true);
        }
    }

    /// Runs one map task end to end: the fault-layer attempt loop, then
    /// (if an attempt survives) map + route. Both a primary and a
    /// speculative copy may execute concurrently; the compare-and-swap to
    /// `TASK_RESOLVED` picks exactly one winner, and only the winner
    /// counts metrics, records errors, dead-letters the task, or sends
    /// blocks — the loser discards everything it computed.
    fn execute_map_task(
        &self,
        task: usize,
        inputs: &[M::In],
        per_group: usize,
        channels: &[BoundedQueue<Block<M::Key, M::Value>>],
        coord: &Coordination,
        speculative: bool,
    ) {
        let resolve = || {
            let won = coord.task_state[task]
                .compare_exchange(
                    TASK_CLAIMED,
                    TASK_RESOLVED,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok();
            if won && speculative {
                coord.spec_wins.fetch_add(1, Ordering::Relaxed);
            }
            won
        };
        match self.fault_verdict(FaultStage::Map, task, speculative) {
            TaskVerdict::Run { retries } => {
                let pairs = self.map_one(&inputs[task]);
                let mut targets: Vec<usize> = Vec::new();
                let mut per_group_records: Vec<Vec<Tagged<M>>> =
                    (0..channels.len()).map(|_| Vec::new()).collect();
                let mut emitted = 0u64;
                let mut shuffled = 0u64;
                let mut bytes = 0u64;
                let mut route_error: Option<SimError> = None;
                for (key, value) in pairs {
                    emitted += 1;
                    if let Err(error) = self.route_into(&key, &mut targets) {
                        route_error = Some(error);
                        break;
                    }
                    let key_bytes = key.size_bytes();
                    let value_bytes = value.size_bytes();
                    for &t in &targets {
                        shuffled += 1;
                        bytes += key_bytes + value_bytes;
                        per_group_records[t / per_group].push((t, key.clone(), value.clone()));
                    }
                }
                if !resolve() {
                    return;
                }
                coord
                    .map_retries
                    .fetch_add(u64::from(retries), Ordering::Relaxed);
                coord.records_emitted.fetch_add(emitted, Ordering::Relaxed);
                coord
                    .records_shuffled
                    .fetch_add(shuffled, Ordering::Relaxed);
                coord.bytes_shuffled.fetch_add(bytes, Ordering::Relaxed);
                let failed = if let Some(error) = route_error {
                    coord.record_error(task, error);
                    true
                } else {
                    false
                };
                // This task's *map* work (map + route) is finished; only
                // the shuffle hand-off remains. Count it done before the
                // sends so the consumers' overlap sampling stays honest —
                // a block from the final map task must never count as
                // overlap when no map work remains.
                coord.tasks_done.fetch_add(1, Ordering::Relaxed);
                if !failed {
                    for (g, records) in per_group_records.into_iter().enumerate() {
                        if records.is_empty() {
                            continue;
                        }
                        coord.blocks_sent.fetch_add(1, Ordering::Relaxed);
                        channels[g].send(Block { seq: task, records }, &coord.gauge);
                    }
                }
            }
            TaskVerdict::Dropped { retries, attempts } => {
                if !resolve() {
                    return;
                }
                coord
                    .map_retries
                    .fetch_add(u64::from(retries), Ordering::Relaxed);
                coord.dlq.lock().expect("dlq slot poisoned").push(DlqEntry {
                    stage: FaultStage::Map,
                    index: task,
                    attempts,
                });
                coord.tasks_done.fetch_add(1, Ordering::Relaxed);
            }
            TaskVerdict::Failed { error, retries } => {
                if !resolve() {
                    return;
                }
                coord
                    .map_retries
                    .fetch_add(u64::from(retries), Ordering::Relaxed);
                coord.record_error(task, error);
                coord.tasks_done.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// One consumer worker: drain the group's channel (accounting bytes
    /// and building seq-ordered runs per owned partition, concurrently
    /// with live mappers), then — once every mapper detached — finalize:
    /// k-way merge each partition's runs and reduce it, either for the
    /// owned range only ([`FinalizeMode::Static`]) or by stealing
    /// completed partitions from the shared queue
    /// ([`FinalizeMode::Stealing`]).
    #[allow(clippy::too_many_arguments)]
    fn consume_group(
        &self,
        group: usize,
        per_group: usize,
        n_inputs: usize,
        channel: &BoundedQueue<Block<M::Key, M::Value>>,
        finalize_queue: &FinalizeQueue<Arc<FinalizeItem<M>>>,
        coord: &Coordination,
        epoch: &Instant,
        ckpt: Option<&CheckpointSession<R::Out>>,
        delete_errors: &Arc<AtomicU64>,
    ) -> GroupResult<R::Out> {
        // Mark the receiver dead if this thread unwinds (a panicking
        // reducer or `ByteSized` impl), so mappers blocked on this
        // channel resume instead of deadlocking the scope join.
        let _detach = ReceiverGuard(channel);
        // Registered *before* the drain: if user code panics while this
        // consumer is still draining (a `ByteSized` impl), the guard
        // aborts the finalize queue so sibling consumers stealing from it
        // drain out instead of waiting forever for this publisher.
        let mut publisher = (self.config.finalize_mode == FinalizeMode::Stealing)
            .then(|| FinalizePublisherGuard::new(finalize_queue));
        let lo = group * per_group;
        let hi = (lo + per_group).min(self.n_reducers);
        let n_local = hi - lo;
        let mut parts: Vec<PartitionBuffer<M>> = (0..n_local)
            .map(|_| PartitionBuffer {
                runs: Vec::new(),
                run_bytes: Vec::new(),
                spilled: Vec::new(),
            })
            .collect();
        let mut records = vec![0u64; n_local];
        let mut value_bytes = vec![0u64; n_local];
        let mut total_bytes = vec![0u64; n_local];
        let mut overlap_blocks = 0u64;
        // Out-of-core accounting: `buffered` is the group's resident run
        // bytes (`ByteSized`, the budget's unit), enforced at block
        // granularity so a `seq` is never split across runs. A spill
        // failure records its `SpillIo` (lowest partition wins, like
        // every reduce-stage error) and falls back to unbounded buffering
        // so the pipeline still drains — the job is failing anyway.
        let budget = self.config.memory_budget;
        let spill_dir = spill::resolve_dir(self.config.spill_dir.as_deref());
        let mut buffered = 0u64;
        let mut peak_buffered = 0u64;
        let mut spilled_runs = 0u64;
        let mut spilled_bytes = 0u64;
        let mut spill_failed = false;

        while let Some(block) = channel.recv(&coord.gauge) {
            if coord.tasks_done.load(Ordering::Relaxed) < n_inputs {
                overlap_blocks += 1;
            }
            let seq = block.seq;
            for (p, key, value) in block.records {
                let local = p - lo;
                records[local] += 1;
                let kb = key.size_bytes();
                let vb = value.size_bytes();
                value_bytes[local] += vb;
                total_bytes[local] += kb + vb;
                buffered += kb + vb;
                // Incremental reassembly: mappers hand out tasks in
                // increasing order, so most blocks extend the tail run in
                // place; an out-of-order arrival opens a new run. The
                // sorting effort thus happens here, inside the overlap
                // window, leaving only a k-way merge for finalize.
                let buf = &mut parts[local];
                let extends_tail = buf
                    .runs
                    .last()
                    .and_then(|run| run.last())
                    .is_some_and(|&(tail, _, _)| tail <= seq);
                if !extends_tail {
                    buf.runs.push(Vec::new());
                    buf.run_bytes.push(0);
                }
                buf.runs
                    .last_mut()
                    .expect("a tail run exists")
                    .push((seq, key, value));
                *buf.run_bytes.last_mut().expect("a tail run exists") += kb + vb;
            }
            // Seal-and-spill: largest resident run first (fewest files
            // for the most relief), repeating until back under budget.
            while !spill_failed && budget.is_some_and(|b| buffered > b) {
                let mut largest: Option<(usize, usize, u64)> = None;
                for (local, buf) in parts.iter().enumerate() {
                    for (idx, &bytes) in buf.run_bytes.iter().enumerate() {
                        if largest.is_none_or(|(_, _, top)| bytes > top) {
                            largest = Some((local, idx, bytes));
                        }
                    }
                }
                let Some((local, idx, bytes)) = largest.filter(|&(_, _, b)| b > 0) else {
                    break;
                };
                match spill::write_run(
                    &spill_dir,
                    &parts[local].runs[idx],
                    bytes,
                    Some(Arc::clone(delete_errors)),
                ) {
                    Ok(sealed) => {
                        buffered -= bytes;
                        spilled_runs += 1;
                        spilled_bytes += bytes;
                        let buf = &mut parts[local];
                        buf.spilled.push(sealed);
                        // Plain `remove`, not `swap_remove`: the tail run
                        // must stay last so later blocks keep extending it.
                        buf.runs.remove(idx);
                        buf.run_bytes.remove(idx);
                    }
                    Err(error) => {
                        coord.record_reduce_error(
                            lo + local,
                            SimError::SpillIo {
                                partition: lo + local,
                                path: error.path,
                                source: error.source,
                            },
                        );
                        spill_failed = true;
                    }
                }
            }
            peak_buffered = peak_buffered.max(buffered);
        }

        // End-of-stream: the map stage is complete. Finalize (skipped
        // when a routing error is pending — the run returns that error
        // and discards everything, so reducing would be wasted work;
        // draining above still happened, which is what keeps blocked
        // mappers from deadlocking). Empty partitions never finalize:
        // they produce no outputs and no reduce task in any mode.
        let finalize_start = epoch.elapsed().as_secs_f64();
        let mut finalized: Vec<FinalizedPartition<R::Out>> = Vec::new();
        let mut stolen = 0u64;
        let clean = coord.error_seq.load(Ordering::Relaxed) == usize::MAX;
        match self.config.finalize_mode {
            FinalizeMode::Static => {
                if clean {
                    for (local, buf) in parts.into_iter().enumerate() {
                        if records[local] == 0 {
                            continue;
                        }
                        let part =
                            self.finalize_partition(lo + local, buf.runs, buf.spilled, false, ckpt);
                        coord
                            .reduce_retries
                            .fetch_add(part.retries, Ordering::Relaxed);
                        if let Some(error) = part.failed.clone() {
                            coord.record_reduce_error(lo + local, error);
                        }
                        self.checkpoint_finalized(&part, ckpt);
                        finalized.push(part);
                    }
                }
            }
            FinalizeMode::Stealing => {
                let publisher = publisher
                    .as_mut()
                    .expect("guard registered for stealing mode before the drain");
                if clean {
                    let items: Vec<(u64, Arc<FinalizeItem<M>>)> = parts
                        .into_iter()
                        .enumerate()
                        .filter(|&(local, _)| records[local] > 0)
                        .map(|(local, buf)| {
                            (
                                total_bytes[local],
                                Arc::new(FinalizeItem {
                                    partition: lo + local,
                                    owner: group,
                                    runs: buf.runs,
                                    spilled: buf.spilled,
                                }),
                            )
                        })
                        .collect();
                    finalize_queue.publish(items);
                }
                publisher.finish();
                while let Some(item) = finalize_queue.steal() {
                    let owner = item.owner;
                    if let Some(part) = self.finalize_shared(item, coord, false, ckpt) {
                        if owner != group {
                            stolen += 1;
                        }
                        finalized.push(part);
                    }
                }
                // The queue is dry but peers may still be finalizing
                // stragglers: speculate on the largest in-flight items.
                // Every pass resolves at least one partition (ours or the
                // primary's finish), so this terminates.
                if self.config.speculation && clean {
                    loop {
                        let candidate =
                            finalize_queue
                                .speculation_candidates()
                                .into_iter()
                                .find(|item| {
                                    !coord.finalize_resolved[item.partition].load(Ordering::Acquire)
                                });
                        let Some(item) = candidate else { break };
                        let owner = item.owner;
                        coord.spec_launches.fetch_add(1, Ordering::Relaxed);
                        if let Some(part) = self.finalize_shared(item, coord, true, ckpt) {
                            coord.spec_wins.fetch_add(1, Ordering::Relaxed);
                            if owner != group {
                                stolen += 1;
                            }
                            finalized.push(part);
                        }
                    }
                }
            }
        }
        GroupResult {
            first_partition: lo,
            records,
            value_bytes,
            total_bytes,
            finalized,
            overlap_blocks,
            stolen,
            finalize_start,
            finalize_end: epoch.elapsed().as_secs_f64(),
            spilled_runs,
            spilled_bytes,
            peak_buffered,
        }
    }

    /// Merges one partition's runs into arrival order and reduces it —
    /// the unit of work both finalize modes schedule — after running the
    /// fault-layer attempt loop. Pure: all side effects (retry counters,
    /// error recording) are applied by the caller, and under the stealing
    /// finalize only by the resolution winner.
    fn finalize_partition(
        &self,
        partition: usize,
        runs: Vec<Run<M>>,
        spilled: Vec<SpilledRun>,
        speculative: bool,
        ckpt: Option<&CheckpointSession<R::Out>>,
    ) -> FinalizedPartition<R::Out> {
        // Checkpoint hit: a previous run of this fingerprint already
        // finalized the partition. Checked *before* the fault verdict so
        // an injected kill never re-fires for finished work; the buffered
        // and spilled runs are simply dropped (the RAII guards delete the
        // temp files) in favor of the verified persisted outputs.
        if let Some((outputs, distinct_keys)) = ckpt.and_then(|s| s.lookup(partition)) {
            return FinalizedPartition {
                partition,
                distinct_keys,
                outputs,
                dlq_attempts: None,
                failed: None,
                retries: 0,
                fanin: 0,
                from_checkpoint: true,
            };
        }
        match self.fault_verdict(FaultStage::Reduce, partition, speculative) {
            TaskVerdict::Run { retries } => {
                let fanin = (runs.len() + spilled.len()) as u64;
                match merge_mixed(runs, &spilled) {
                    Ok(mut merged) => {
                        let mut outputs = Vec::new();
                        let distinct_keys = self.reduce_partition(&mut merged, &mut outputs);
                        FinalizedPartition {
                            partition,
                            distinct_keys,
                            outputs,
                            dlq_attempts: None,
                            failed: None,
                            retries: u64::from(retries),
                            fanin,
                            from_checkpoint: false,
                        }
                    }
                    // A disk or decode failure streaming a spilled run
                    // back is an infrastructure error, not a task fault:
                    // it bypasses the DLQ and surfaces as the job error
                    // (lowest partition wins, applied by the caller).
                    Err(error) => FinalizedPartition {
                        partition,
                        distinct_keys: 0,
                        outputs: Vec::new(),
                        dlq_attempts: None,
                        failed: Some(SimError::SpillIo {
                            partition,
                            path: error.path,
                            source: error.source,
                        }),
                        retries: u64::from(retries),
                        fanin,
                        from_checkpoint: false,
                    },
                }
            }
            TaskVerdict::Dropped { retries, attempts } => FinalizedPartition {
                partition,
                distinct_keys: 0,
                outputs: Vec::new(),
                dlq_attempts: Some(attempts),
                failed: None,
                retries: u64::from(retries),
                fanin: 0,
                from_checkpoint: false,
            },
            TaskVerdict::Failed { error, retries } => FinalizedPartition {
                partition,
                distinct_keys: 0,
                outputs: Vec::new(),
                dlq_attempts: None,
                failed: Some(error),
                retries: u64::from(retries),
                fanin: 0,
                from_checkpoint: false,
            },
        }
    }

    /// Finalizes an `Arc`-shared queue item (stealing mode): does the
    /// work, then races the compare-and-swap on the partition's
    /// resolution slot. Returns `Some` — and applies the retry/error side
    /// effects — only for the winner; the loser's work is discarded.
    /// Commits one winning finalize to the checkpoint session (when one
    /// is active): successful fresh work only — dead-lettered, failed,
    /// and already-checkpointed partitions are not (re)persisted.
    fn checkpoint_finalized(
        &self,
        part: &FinalizedPartition<R::Out>,
        ckpt: Option<&CheckpointSession<R::Out>>,
    ) {
        if let Some(session) = ckpt {
            if !part.from_checkpoint && part.failed.is_none() && part.dlq_attempts.is_none() {
                session.record(part.partition, &part.outputs, part.distinct_keys);
            }
        }
    }

    fn finalize_shared(
        &self,
        item: Arc<FinalizeItem<M>>,
        coord: &Coordination,
        speculative: bool,
        ckpt: Option<&CheckpointSession<R::Out>>,
    ) -> Option<FinalizedPartition<R::Out>> {
        let partition = item.partition;
        if coord.finalize_resolved[partition].load(Ordering::Acquire) {
            return None;
        }
        // Owned when this thread holds the last reference; under
        // speculation the item stays shared, so the runs are cloned and
        // the spilled handles `Arc`-bumped — both finalize copies stream
        // the same temp files through independent readers.
        let (runs, spilled) = match Arc::try_unwrap(item) {
            Ok(owned) => (owned.runs, owned.spilled),
            Err(shared) => (shared.runs.clone(), shared.spilled.clone()),
        };
        let part = self.finalize_partition(partition, runs, spilled, speculative, ckpt);
        if coord.finalize_resolved[partition]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return None;
        }
        coord
            .reduce_retries
            .fetch_add(part.retries, Ordering::Relaxed);
        if let Some(error) = part.failed.clone() {
            coord.record_reduce_error(partition, error);
        }
        // Resolution winner only: exactly one checkpoint commit per
        // partition, no matter how many copies raced.
        self.checkpoint_finalized(&part, ckpt);
        Some(part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, DlqMode, FaultPlan, FinalizeMode, ShuffleMode};
    use crate::job::CapacityPolicy;
    use crate::router::{HashRouter, TableRouter};
    use crate::traits::Emitter;

    struct IdentityMapper;
    impl Mapper for IdentityMapper {
        type In = (u64, String);
        type Key = u64;
        type Value = String;
        fn map(&self, input: &(u64, String), emit: &mut Emitter<u64, String>) {
            emit.emit(input.0, input.1.clone());
        }
    }

    /// Order-sensitive reducer: concatenation exposes any block reorder.
    struct ConcatReducer;
    impl Reducer for ConcatReducer {
        type Key = u64;
        type Value = String;
        type Out = (u64, String);
        fn reduce(&self, key: &u64, values: &[String], out: &mut Vec<(u64, String)>) {
            out.push((*key, values.concat()));
        }
    }

    fn inputs(n: u64) -> Vec<(u64, String)> {
        (0..n).map(|i| (i % 13, format!("v{i}-"))).collect()
    }

    fn run(
        shuffle: ShuffleMode,
        map_threads: usize,
        depth: usize,
        n_red: usize,
    ) -> crate::JobOutput<(u64, String)> {
        Job::new(
            IdentityMapper,
            ConcatReducer,
            HashRouter::new(),
            n_red,
            ClusterConfig {
                shuffle,
                map_threads,
                pipeline_depth: depth,
                ..ClusterConfig::default()
            },
        )
        .run(&inputs(300))
        .unwrap()
    }

    /// `merge_runs` restores exact ascending-seq order (ties contiguous
    /// within a run, preserved stably) — the same order a stable
    /// `sort_by_key(seq)` over the concatenation would produce.
    #[test]
    fn merge_runs_restores_sequence_order() {
        let runs: Vec<Vec<(usize, u64, &str)>> = vec![
            vec![(0, 1, "a"), (2, 2, "b"), (2, 3, "c"), (7, 4, "d")],
            vec![(1, 5, "e"), (5, 6, "f")],
            vec![(3, 7, "g")],
        ];
        let mut expected: Vec<(usize, u64, &str)> = runs.concat();
        expected.sort_by_key(|&(seq, _, _)| seq);
        let expected: Vec<(u64, &str)> = expected.into_iter().map(|(_, k, v)| (k, v)).collect();
        assert_eq!(merge_runs(runs), expected);
        assert_eq!(merge_runs(Vec::<Vec<(usize, u64, &str)>>::new()), vec![]);
        assert_eq!(merge_runs(vec![vec![(4, 9u64, "z")]]), vec![(9, "z")]);
    }

    /// The finalize queue pops largest-priority first, blocks until the
    /// last publisher finishes, and signals end-of-work with `None`.
    #[test]
    fn finalize_queue_is_lpt_ordered_and_terminates() {
        let queue: FinalizeQueue<&str> = FinalizeQueue::new(2, false);
        queue.publish(vec![(5, "small"), (50, "big")]);
        queue.finish_publishing();
        let stolen = std::thread::scope(|scope| {
            let stealer = scope.spawn(|| {
                let mut seen = Vec::new();
                while let Some(item) = queue.steal() {
                    seen.push(item);
                }
                seen
            });
            // The stealer drains the first batch and then *waits* for the
            // second publisher rather than exiting early.
            queue.publish(vec![(20, "late")]);
            queue.finish_publishing();
            stealer.join().unwrap()
        });
        assert_eq!(stolen[0], "big", "largest bytes pop first");
        assert_eq!(stolen.len(), 3);
    }

    #[test]
    fn bounded_queue_delivers_fifo_and_signals_close() {
        let gauge = InflightGauge::default();
        let queue: BoundedQueue<u32> = BoundedQueue::new(2, 1);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..50 {
                    queue.send(i, &gauge);
                }
                queue.close_sender();
            });
            let mut seen = Vec::new();
            while let Some(i) = queue.recv(&gauge) {
                seen.push(i);
            }
            assert_eq!(seen, (0..50).collect::<Vec<_>>());
        });
        assert!(
            gauge.peak.load(Ordering::Relaxed) <= 2,
            "capacity bounds the gauge"
        );
        assert_eq!(gauge.current.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn gauge_peak_respects_summed_capacities() {
        let gauge = InflightGauge::default();
        let queues: Vec<BoundedQueue<u32>> = (0..3).map(|_| BoundedQueue::new(2, 2)).collect();
        std::thread::scope(|scope| {
            for sender in 0..2 {
                let queues = &queues;
                let gauge = &gauge;
                scope.spawn(move || {
                    for i in 0..60 {
                        queues[(i as usize + sender) % 3].send(i, gauge);
                    }
                    for q in queues {
                        q.close_sender();
                    }
                });
            }
            for q in &queues {
                let gauge = &gauge;
                scope.spawn(move || while q.recv(gauge).is_some() {});
            }
        });
        assert!(gauge.peak.load(Ordering::Relaxed) <= 6);
    }

    #[test]
    fn pipelined_matches_materialized_bit_for_bit() {
        let reference = run(ShuffleMode::Materialized, 1, 4, 20);
        for (threads, depth) in [(1, 1), (2, 1), (4, 3), (3, 8)] {
            let pipelined = run(ShuffleMode::Pipelined, threads, depth, 20);
            assert_eq!(
                reference.outputs, pipelined.outputs,
                "t={threads} d={depth}"
            );
            assert_eq!(
                reference.metrics.deterministic(),
                pipelined.metrics.deterministic(),
                "t={threads} d={depth}"
            );
            let p = &pipelined.metrics.pipeline;
            assert!(p.consumer_groups >= 1);
            assert!(p.blocks_sent >= 1);
            assert!(p.peak_inflight_blocks >= 1);
            assert!(p.peak_inflight_blocks <= depth as u64 * p.consumer_groups);
        }
    }

    /// The work-stealing finalize is a pure scheduling choice: outputs
    /// and deterministic metrics stay bit-identical to the materialized
    /// pass for every thread count and depth, and static finalize never
    /// reports stolen partitions.
    #[test]
    fn stealing_finalize_matches_materialized_bit_for_bit() {
        let reference = run(ShuffleMode::Materialized, 1, 4, 20);
        for (threads, depth) in [(1, 1), (2, 1), (4, 3), (3, 8)] {
            for finalize in FinalizeMode::ALL {
                let pipelined = Job::new(
                    IdentityMapper,
                    ConcatReducer,
                    HashRouter::new(),
                    20,
                    ClusterConfig {
                        shuffle: ShuffleMode::Pipelined,
                        map_threads: threads,
                        pipeline_depth: depth,
                        finalize_mode: finalize,
                        ..ClusterConfig::default()
                    },
                )
                .run(&inputs(300))
                .unwrap();
                assert_eq!(
                    reference.outputs, pipelined.outputs,
                    "t={threads} d={depth} {finalize:?}"
                );
                assert_eq!(
                    reference.metrics.deterministic(),
                    pipelined.metrics.deterministic(),
                    "t={threads} d={depth} {finalize:?}"
                );
                let p = &pipelined.metrics.pipeline;
                if finalize == FinalizeMode::Static {
                    assert_eq!(p.stolen_partitions, 0, "static finalize never steals");
                }
                assert_eq!(p.finalize_group_seconds.len() as u64, p.consumer_groups);
                assert!(p.finalize_imbalance >= 1.0, "max/mean span is at least 1");
            }
        }
    }

    /// PR 5 overlap-counter bugfix, pinned deterministically: a single
    /// map task's own blocks can never be overlap (its map work is
    /// complete before the blocks are handed to the shuffle, and no other
    /// map work exists), so the counter must read exactly zero — at every
    /// thread count and depth. Before the fix the mapper counted the task
    /// done only *after* sending, so this block raced to 1.
    #[test]
    fn single_task_blocks_never_count_as_overlap() {
        for (threads, depth) in [(1, 1), (4, 1), (2, 3)] {
            let out = Job::new(
                IdentityMapper,
                ConcatReducer,
                HashRouter::new(),
                4,
                ClusterConfig {
                    shuffle: ShuffleMode::Pipelined,
                    map_threads: threads,
                    pipeline_depth: depth,
                    ..ClusterConfig::default()
                },
            )
            .run(&inputs(1))
            .unwrap();
            let p = &out.metrics.pipeline;
            assert_eq!(p.blocks_sent, 1, "one task, one key, one block");
            assert_eq!(
                p.map_reduce_overlap_blocks, 0,
                "t={threads} d={depth}: the final (only) task's block is not overlap"
            );
        }
    }

    #[test]
    fn single_reducer_single_depth_does_not_deadlock() {
        let reference = run(ShuffleMode::Materialized, 1, 1, 1);
        let pipelined = run(ShuffleMode::Pipelined, 4, 1, 1);
        assert_eq!(reference.outputs, pipelined.outputs);
        assert_eq!(
            reference.metrics.deterministic(),
            pipelined.metrics.deterministic()
        );
    }

    #[test]
    fn pipelined_empty_input_runs_cleanly() {
        let out = Job::new(
            IdentityMapper,
            ConcatReducer,
            HashRouter::new(),
            4,
            ClusterConfig {
                shuffle: ShuffleMode::Pipelined,
                ..ClusterConfig::default()
            },
        )
        .run(&[])
        .unwrap();
        assert!(out.outputs.is_empty());
        assert_eq!(out.metrics.bytes_shuffled, 0);
        assert_eq!(out.metrics.pipeline.blocks_sent, 0);
    }

    /// A routing error mid-pipeline drains cleanly and surfaces the error
    /// the sequential pass would have hit first: input 7 routes out of
    /// range, every earlier input is fine.
    #[test]
    fn mid_pipeline_route_error_drains_and_matches_pass_modes() {
        let mut table: Vec<(u64, Vec<usize>)> =
            (0..13).map(|k| (k, vec![k as usize % 3])).collect();
        table[7].1 = vec![9]; // out of range for 3 reducers
        let mk = |shuffle, map_threads, finalize_mode| {
            Job::new(
                IdentityMapper,
                ConcatReducer,
                TableRouter::new(table.clone()),
                3,
                ClusterConfig {
                    shuffle,
                    map_threads,
                    pipeline_depth: 1,
                    finalize_mode,
                    ..ClusterConfig::default()
                },
            )
            .run(&inputs(300))
            .unwrap_err()
        };
        let expected = mk(ShuffleMode::Materialized, 1, FinalizeMode::Static);
        assert_eq!(
            expected,
            SimError::RouteOutOfRange {
                target: 9,
                n_reducers: 3
            }
        );
        for threads in [1, 2, 4] {
            for finalize in FinalizeMode::ALL {
                assert_eq!(expected, mk(ShuffleMode::Pipelined, threads, finalize));
            }
            assert_eq!(
                expected,
                mk(ShuffleMode::Streaming, threads, FinalizeMode::Static)
            );
        }
    }

    /// A panic in user map code must propagate out of `Job::run` like the
    /// pass-based modes propagate it — not deadlock the stage graph. The
    /// test completing at all is the real assertion (a regression hangs
    /// until the harness timeout); depth 1 with several mappers maximizes
    /// the chance that peers are blocked on full channels when the panic
    /// hits.
    #[test]
    fn mapper_panic_propagates_instead_of_deadlocking() {
        struct ExplodingMapper;
        impl Mapper for ExplodingMapper {
            type In = (u64, String);
            type Key = u64;
            type Value = String;
            fn map(&self, input: &(u64, String), emit: &mut Emitter<u64, String>) {
                assert!(input.0 != 7, "synthetic mapper failure");
                emit.emit(input.0, input.1.clone());
            }
        }
        let job = Job::new(
            ExplodingMapper,
            ConcatReducer,
            HashRouter::new(),
            4,
            ClusterConfig {
                shuffle: ShuffleMode::Pipelined,
                map_threads: 3,
                pipeline_depth: 1,
                ..ClusterConfig::default()
            },
        );
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.run(&inputs(300))));
        assert!(result.is_err(), "the mapper panic must surface");
    }

    /// Same contract for the reduce side: a panicking reducer unwinds
    /// through the consumer thread and out of `Job::run` — under *both*
    /// finalize modes. The stealing case is the canary for the
    /// [`FinalizePublisherGuard`]: the panicking consumer must abort the
    /// shared queue so its siblings drain out instead of waiting forever
    /// for a publisher that will never finish.
    #[test]
    fn reducer_panic_propagates_instead_of_deadlocking() {
        struct ExplodingReducer;
        impl Reducer for ExplodingReducer {
            type Key = u64;
            type Value = String;
            type Out = ();
            fn reduce(&self, key: &u64, _values: &[String], _out: &mut Vec<()>) {
                assert!(*key != 3, "synthetic reducer failure");
            }
        }
        for finalize_mode in FinalizeMode::ALL {
            let job = Job::new(
                IdentityMapper,
                ExplodingReducer,
                HashRouter::new(),
                4,
                ClusterConfig {
                    shuffle: ShuffleMode::Pipelined,
                    map_threads: 2,
                    pipeline_depth: 1,
                    finalize_mode,
                    ..ClusterConfig::default()
                },
            );
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.run(&inputs(300))));
            assert!(
                result.is_err(),
                "{finalize_mode:?}: the reducer panic must surface"
            );
        }
    }

    /// A panic in a user `ByteSized` impl *while a consumer is still
    /// draining* must not deadlock the stealing finalize: the panicking
    /// consumer never publishes, so without the pre-drain
    /// [`FinalizePublisherGuard`] its siblings would wait on the queue
    /// forever. Every value is sized once map-side then once
    /// consumer-side, so the 2N-th sizing call is always consumer-side —
    /// panicking there pins the drain-phase unwind path deterministically.
    #[test]
    fn consumer_drain_panic_aborts_the_stealing_queue() {
        const N: u64 = 120;
        static CALLS: AtomicU64 = AtomicU64::new(0);

        #[derive(Clone)]
        struct CountedPayload;
        impl crate::record::ByteSized for CountedPayload {
            fn size_bytes(&self) -> u64 {
                let call = CALLS.fetch_add(1, Ordering::Relaxed);
                assert!(call != 2 * N - 1, "synthetic consumer-drain failure");
                4
            }
        }
        impl SpillCodec for CountedPayload {
            fn encode(&self, _buf: &mut Vec<u8>) {}
            fn decode(_bytes: &mut &[u8]) -> Option<Self> {
                Some(CountedPayload)
            }
        }

        struct PayloadMapper;
        impl Mapper for PayloadMapper {
            type In = (u64, String);
            type Key = u64;
            type Value = CountedPayload;
            fn map(&self, input: &(u64, String), emit: &mut Emitter<u64, CountedPayload>) {
                emit.emit(input.0, CountedPayload);
            }
        }

        struct NullReducer;
        impl Reducer for NullReducer {
            type Key = u64;
            type Value = CountedPayload;
            type Out = ();
            fn reduce(&self, _key: &u64, _values: &[CountedPayload], _out: &mut Vec<()>) {}
        }

        let job = Job::new(
            PayloadMapper,
            NullReducer,
            HashRouter::new(),
            4,
            ClusterConfig {
                shuffle: ShuffleMode::Pipelined,
                map_threads: 2,
                pipeline_depth: 1,
                finalize_mode: FinalizeMode::Stealing,
                ..ClusterConfig::default()
            },
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.run(&inputs(N))));
        assert!(result.is_err(), "the drain-phase panic must surface");
    }

    /// Satellite-c regression: a *retryable* injected reduce fault flows
    /// through `fault_verdict` as a value, never unwinds, and therefore
    /// must not trip the [`FinalizePublisherGuard`] abort path the way a
    /// true user panic does. Before the check-first design, an injected
    /// fault that unwound through a stealing consumer aborted the shared
    /// queue and poisoned its siblings; here the run must complete
    /// cleanly, bit-identical to the fault-free reference, with the
    /// retries visible only in the masked fault counters.
    #[test]
    fn injected_reduce_faults_do_not_trip_the_publisher_guard() {
        let reference = run(ShuffleMode::Materialized, 1, 4, 8);
        for finalize_mode in FinalizeMode::ALL {
            for threads in [1, 2, 4] {
                let out = Job::new(
                    IdentityMapper,
                    ConcatReducer,
                    HashRouter::new(),
                    8,
                    ClusterConfig {
                        shuffle: ShuffleMode::Pipelined,
                        map_threads: threads,
                        pipeline_depth: 1,
                        finalize_mode,
                        retry_budget: 8,
                        fault_plan: Some(FaultPlan {
                            reduce_rate: 0.5,
                            ..FaultPlan::seeded(11, 0.0)
                        }),
                        ..ClusterConfig::default()
                    },
                )
                .run(&inputs(300))
                .unwrap_or_else(|e| panic!("{finalize_mode:?} t={threads}: {e}"));
                assert_eq!(
                    reference.outputs, out.outputs,
                    "{finalize_mode:?} t={threads}"
                );
                assert_eq!(
                    reference.metrics.deterministic(),
                    out.metrics.deterministic(),
                    "{finalize_mode:?} t={threads}"
                );
                assert!(
                    out.metrics.faults.reduce_retries > 0,
                    "{finalize_mode:?} t={threads}: seed 11 at rate 0.5 must fire"
                );
                assert!(out.dlq.is_empty(), "budget 8 absorbs every fault");
            }
        }
    }

    /// Exhausting the retry budget in [`DlqMode::Fail`] surfaces a clean
    /// `SimError::RetriesExhausted` naming the task — a `Result`, not a
    /// panic — and the error is identical across every shuffle and
    /// finalize mode, like the other cross-mode error-precedence
    /// contracts.
    #[test]
    fn exhausted_retries_fail_cleanly_not_via_panic() {
        let plan = FaultPlan {
            poison_reduce_tasks: vec![2],
            ..FaultPlan::default()
        };
        let mk = |shuffle, threads, finalize_mode| {
            let job = Job::new(
                IdentityMapper,
                ConcatReducer,
                HashRouter::new(),
                4,
                ClusterConfig {
                    shuffle,
                    map_threads: threads,
                    pipeline_depth: 1,
                    finalize_mode,
                    retry_budget: 2,
                    fault_plan: Some(plan.clone()),
                    ..ClusterConfig::default()
                },
            );
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.run(&inputs(300))))
                .expect("retry exhaustion must be an error value, not a panic")
                .unwrap_err()
        };
        let expected = SimError::RetriesExhausted {
            stage: crate::cluster::FaultStage::Reduce,
            index: 2,
            attempts: 3,
        };
        assert_eq!(
            expected,
            mk(ShuffleMode::Materialized, 1, FinalizeMode::Static)
        );
        assert_eq!(
            expected,
            mk(ShuffleMode::Streaming, 2, FinalizeMode::Static)
        );
        for finalize in FinalizeMode::ALL {
            for threads in [1, 2, 4] {
                assert_eq!(expected, mk(ShuffleMode::Pipelined, threads, finalize));
            }
        }
    }

    /// LPT-ranked speculation beats an injected map straggler: the primary
    /// claims task 0 and stalls, an idle mapper re-executes it without the
    /// stall and wins the resolution CAS. The output stays bit-identical
    /// because both copies compute the same deterministic result — only
    /// the masked `speculative_*` counters show the race happened.
    #[test]
    fn speculation_wins_against_an_injected_map_straggler() {
        let reference = run(ShuffleMode::Materialized, 1, 4, 8);
        let out = Job::new(
            IdentityMapper,
            ConcatReducer,
            HashRouter::new(),
            8,
            ClusterConfig {
                shuffle: ShuffleMode::Pipelined,
                map_threads: 2,
                pipeline_depth: 4,
                speculation: true,
                fault_plan: Some(FaultPlan {
                    straggle_map_tasks: vec![0],
                    straggle_millis: 200,
                    ..FaultPlan::default()
                }),
                ..ClusterConfig::default()
            },
        )
        .run(&inputs(300))
        .unwrap();
        assert_eq!(reference.outputs, out.outputs);
        assert_eq!(
            reference.metrics.deterministic(),
            out.metrics.deterministic()
        );
        assert!(out.metrics.faults.speculative_launches >= 1);
        assert!(
            out.metrics.faults.speculative_wins >= 1,
            "the non-stalled copy must resolve task 0 first"
        );
    }

    /// Same for the reduce side under the stealing finalize: a stalled
    /// finalize shows up in the queue's in-progress registry, an idle
    /// consumer re-runs it from the `Arc`-shared runs without the stall,
    /// and the winner CAS keeps outputs exactly-once and bit-identical.
    #[test]
    fn speculation_wins_against_an_injected_finalize_straggler() {
        let reference = run(ShuffleMode::Materialized, 1, 4, 4);
        let out = Job::new(
            IdentityMapper,
            ConcatReducer,
            HashRouter::new(),
            4,
            ClusterConfig {
                shuffle: ShuffleMode::Pipelined,
                map_threads: 2,
                pipeline_depth: 4,
                finalize_mode: FinalizeMode::Stealing,
                speculation: true,
                fault_plan: Some(FaultPlan {
                    straggle_reduce_tasks: vec![0],
                    straggle_millis: 200,
                    ..FaultPlan::default()
                }),
                ..ClusterConfig::default()
            },
        )
        .run(&inputs(300))
        .unwrap();
        assert_eq!(reference.outputs, out.outputs);
        assert_eq!(
            reference.metrics.deterministic(),
            out.metrics.deterministic()
        );
        assert!(out.metrics.faults.speculative_launches >= 1);
        assert!(
            out.metrics.faults.speculative_wins >= 1,
            "the non-stalled finalize copy must resolve partition 0 first"
        );
    }

    /// Poisoned tasks land in the dead-letter queue under
    /// [`DlqMode::Capture`] — exactly the poisoned tasks, in every mode,
    /// with the same sorted entries — and the rest of the job completes.
    #[test]
    fn capture_mode_dead_letters_identically_across_modes() {
        let plan = FaultPlan {
            poison_map_tasks: vec![5],
            poison_reduce_tasks: vec![2],
            ..FaultPlan::default()
        };
        let mk = |shuffle, threads, finalize_mode| {
            Job::new(
                IdentityMapper,
                ConcatReducer,
                HashRouter::new(),
                4,
                ClusterConfig {
                    shuffle,
                    map_threads: threads,
                    pipeline_depth: 1,
                    finalize_mode,
                    retry_budget: 2,
                    dlq_mode: DlqMode::Capture,
                    fault_plan: Some(plan.clone()),
                    ..ClusterConfig::default()
                },
            )
            .run(&inputs(300))
            .unwrap()
        };
        let reference = mk(ShuffleMode::Materialized, 1, FinalizeMode::Static);
        let entries: Vec<_> = reference
            .dlq
            .iter()
            .map(|e| (e.stage, e.index, e.attempts))
            .collect();
        assert_eq!(
            entries,
            vec![
                (crate::cluster::FaultStage::Map, 5, 3),
                (crate::cluster::FaultStage::Reduce, 2, 3),
            ]
        );
        assert_eq!(reference.metrics.faults.dlq_len, 2);
        for threads in [1, 2, 4] {
            for finalize in FinalizeMode::ALL {
                let out = mk(ShuffleMode::Pipelined, threads, finalize);
                assert_eq!(reference.dlq, out.dlq, "t={threads} {finalize:?}");
                assert_eq!(reference.outputs, out.outputs, "t={threads} {finalize:?}");
                assert_eq!(
                    reference.metrics.deterministic(),
                    out.metrics.deterministic(),
                    "t={threads} {finalize:?}"
                );
            }
            let out = mk(ShuffleMode::Streaming, threads, FinalizeMode::Static);
            assert_eq!(reference.dlq, out.dlq, "streaming t={threads}");
            assert_eq!(reference.outputs, out.outputs, "streaming t={threads}");
            assert_eq!(
                reference.metrics.deterministic(),
                out.metrics.deterministic(),
                "streaming t={threads}"
            );
        }
    }

    /// The tentpole contract: a tight memory budget forces runs to disk
    /// (`spilled_runs > 0`, residency capped at the budget) yet outputs
    /// and deterministic metrics stay bit-identical to the unbounded
    /// materialized pass — for every finalize mode and thread count, and
    /// with speculation racing two readers over the same spilled files.
    #[test]
    fn tight_budget_spills_and_stays_bit_identical() {
        let reference = run(ShuffleMode::Materialized, 1, 4, 8);
        for finalize_mode in FinalizeMode::ALL {
            for threads in [1, 2, 4] {
                for speculation in [false, true] {
                    let out = Job::new(
                        IdentityMapper,
                        ConcatReducer,
                        HashRouter::new(),
                        8,
                        ClusterConfig {
                            shuffle: ShuffleMode::Pipelined,
                            map_threads: threads,
                            pipeline_depth: 4,
                            finalize_mode,
                            speculation,
                            memory_budget: Some(64),
                            ..ClusterConfig::default()
                        },
                    )
                    .run(&inputs(300))
                    .unwrap();
                    let label = format!("{finalize_mode:?} t={threads} spec={speculation}");
                    assert_eq!(reference.outputs, out.outputs, "{label}");
                    assert_eq!(
                        reference.metrics.deterministic(),
                        out.metrics.deterministic(),
                        "{label}"
                    );
                    let p = &out.metrics.pipeline;
                    assert!(p.spilled_runs > 0, "{label}: 64 bytes must force spills");
                    assert!(p.spilled_bytes > 0, "{label}");
                    assert!(
                        p.peak_buffered_bytes <= 64,
                        "{label}: residency {} exceeds the budget",
                        p.peak_buffered_bytes
                    );
                    assert!(p.merge_fanin >= 1, "{label}");
                }
            }
        }
    }

    /// An unbudgeted run never spills and reports its true residency —
    /// and a budget larger than that residency behaves identically.
    #[test]
    fn generous_budget_never_spills() {
        let unbounded = run(ShuffleMode::Pipelined, 2, 4, 8);
        let p = &unbounded.metrics.pipeline;
        assert_eq!(p.spilled_runs, 0);
        assert_eq!(p.spilled_bytes, 0);
        assert!(p.peak_buffered_bytes > 0, "residency is tracked unbudgeted");
        let roomy = Job::new(
            IdentityMapper,
            ConcatReducer,
            HashRouter::new(),
            8,
            ClusterConfig {
                shuffle: ShuffleMode::Pipelined,
                map_threads: 1,
                pipeline_depth: 4,
                memory_budget: Some(u64::MAX),
                ..ClusterConfig::default()
            },
        )
        .run(&inputs(300))
        .unwrap();
        assert_eq!(roomy.metrics.pipeline.spilled_runs, 0);
        assert_eq!(unbounded.outputs, roomy.outputs);
    }

    /// An unwritable spill directory surfaces as `SimError::SpillIo`
    /// naming the lowest affected partition — an error value, never a
    /// panic — and the pipeline still drains (no deadlock) under both
    /// finalize modes.
    #[test]
    fn unwritable_spill_dir_fails_with_spill_io() {
        let dir = std::path::PathBuf::from("/nonexistent-mrassign-spill-dir/sub");
        for finalize_mode in FinalizeMode::ALL {
            let job = Job::new(
                IdentityMapper,
                ConcatReducer,
                HashRouter::new(),
                8,
                ClusterConfig {
                    shuffle: ShuffleMode::Pipelined,
                    map_threads: 2,
                    pipeline_depth: 2,
                    finalize_mode,
                    memory_budget: Some(64),
                    spill_dir: Some(dir.clone()),
                    ..ClusterConfig::default()
                },
            );
            let error =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.run(&inputs(300))))
                    .expect("spill failures are error values, not panics")
                    .unwrap_err();
            match error {
                SimError::SpillIo {
                    path, source: _, ..
                } => {
                    assert!(
                        path.contains("mrassign-spill-"),
                        "{finalize_mode:?}: {path}"
                    );
                }
                other => panic!("{finalize_mode:?}: expected SpillIo, got {other:?}"),
            }
        }
    }

    /// Capacity enforcement aborts with the identical error across modes:
    /// the lowest overloaded reducer, checked after the full accounting.
    #[test]
    fn enforce_violation_identical_across_modes() {
        let mk = |shuffle| {
            Job::new(
                IdentityMapper,
                ConcatReducer,
                HashRouter::new(),
                4,
                ClusterConfig {
                    shuffle,
                    map_threads: 2,
                    ..ClusterConfig::default()
                },
            )
            .capacity(CapacityPolicy::Enforce(10))
            .run(&inputs(100))
            .unwrap_err()
        };
        let expected = mk(ShuffleMode::Materialized);
        assert!(matches!(expected, SimError::CapacityExceeded { .. }));
        assert_eq!(expected, mk(ShuffleMode::Pipelined));
        assert_eq!(expected, mk(ShuffleMode::Streaming));
    }
}
