//! The discrete-event cluster model: workers, task costs, and phase
//! makespans.
//!
//! The paper's tradeoff (ii) — reducer capacity vs. *parallelism* — needs a
//! notion of time. We model a cluster of `workers` identical machines;
//! each map or reduce task has a simulated duration derived from the bytes
//! it processes, tasks are scheduled greedily longest-first (LPT) onto the
//! least-loaded worker, and a phase's makespan is the maximum worker
//! finishing time. The shuffle is modeled as a shared network pipe.
//!
//! The model is deliberately simple — the quantities the paper reasons
//! about (few big reducers ⇒ long reduce phase; many small reducers ⇒ more
//! communication but shorter reduce phase) emerge directly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::SimError;

/// Which execution stage a fault-injection key refers to: map tasks are
/// indexed by input position, reduce tasks by reducer partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultStage {
    /// A map task (index = input position).
    Map,
    /// A reduce task (index = reducer partition).
    Reduce,
}

impl FaultStage {
    /// Stable name used in error messages and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultStage::Map => "map",
            FaultStage::Reduce => "reduce",
        }
    }
}

/// What happens when a task exhausts its retry budget
/// ([`ClusterConfig::retry_budget`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DlqMode {
    /// Abort the job with [`SimError::RetriesExhausted`] naming the task —
    /// the classic "job killed by a poison record" behavior.
    #[default]
    Fail,
    /// Capture the task in the job's dead-letter queue and keep going: the
    /// job completes, the poisoned task contributes nothing, and
    /// [`crate::JobOutput::dlq`] reports exactly which tasks died.
    Capture,
}

impl DlqMode {
    /// Every mode, in the order the `--dlq` grammar lists them.
    pub const ALL: [DlqMode; 2] = [DlqMode::Fail, DlqMode::Capture];

    /// The name accepted by every `--dlq` flag; [`std::str::FromStr`]
    /// parses and reports errors through this list.
    pub fn name(self) -> &'static str {
        match self {
            DlqMode::Fail => "fail",
            DlqMode::Capture => "capture",
        }
    }
}

impl std::str::FromStr for DlqMode {
    type Err = String;

    /// Parses the mode names used by every `--dlq` flag, so a typo fails
    /// loudly instead of silently reverting to the default.
    fn from_str(name: &str) -> Result<Self, Self::Err> {
        DlqMode::ALL
            .into_iter()
            .find(|mode| mode.name() == name)
            .ok_or_else(|| {
                let expected: Vec<&str> = DlqMode::ALL.map(DlqMode::name).to_vec();
                format!(
                    "unknown dlq mode `{name}` (expected {})",
                    expected.join("|")
                )
            })
    }
}

/// A deterministic, seeded fault-injection schedule.
///
/// Whether a given task *attempt* fails is a pure function of
/// `(seed, stage, task index, attempt)` — a fresh [`StdRng`] is derived per
/// key, so replays are exactly reproducible: re-running a failed task sees
/// the same schedule, and two engines executing the same logical task (in
/// any order, on any thread) reach the same verdict. That is what lets the
/// differential suite demand bit-identical [`crate::JobOutput`]s from
/// faulted runs.
///
/// Beyond the rate-based transient faults, a plan can name *poisoned*
/// tasks (fail on every attempt — the dead-letter-queue workload) and
/// *straggler* tasks (their primary execution is delayed by
/// [`FaultPlan::straggle_millis`], giving speculative re-execution
/// something to win against).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the per-(stage, task, attempt) failure schedule.
    pub seed: u64,
    /// Probability that a given map task attempt fails. Must be a finite
    /// probability in `[0, 1]` (validated).
    pub map_rate: f64,
    /// Probability that a given reduce task attempt fails. Must be a
    /// finite probability in `[0, 1]` (validated).
    pub reduce_rate: f64,
    /// Map task indices that fail on *every* attempt — poison inputs.
    pub poison_map_tasks: Vec<usize>,
    /// Reducer partitions whose reduce fails on every attempt.
    pub poison_reduce_tasks: Vec<usize>,
    /// Map tasks whose primary (non-speculative) execution sleeps for
    /// [`FaultPlan::straggle_millis`] — simulated slow machines.
    pub straggle_map_tasks: Vec<usize>,
    /// Reducer partitions whose primary finalize sleeps.
    pub straggle_reduce_tasks: Vec<usize>,
    /// Wall-clock delay (milliseconds) applied to straggled primaries.
    /// Speculative re-executions model a re-run on a healthy machine and
    /// never sleep.
    pub straggle_millis: u64,
    /// Map task indices whose first attempt *kills the worker process
    /// model*: the verdict path panics instead of returning, simulating a
    /// machine death mid-task. The panic unwinds through the engine's RAII
    /// guards (no deadlock) and surfaces at the thread join — the job dies
    /// the way a real job tracker sees a lost worker. Pair with
    /// [`crate::ClusterConfig::checkpoint_dir`] to test kill-and-resume.
    pub kill_map_tasks: Vec<usize>,
    /// Reducer partitions whose finalize kills the worker. See
    /// [`FaultPlan::kill_map_tasks`].
    pub kill_reduce_tasks: Vec<usize>,
}

impl FaultPlan {
    /// A uniform transient-fault plan: every map and reduce attempt fails
    /// independently with probability `rate`, under `seed`.
    pub fn seeded(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            map_rate: rate,
            reduce_rate: rate,
            ..FaultPlan::default()
        }
    }

    fn poison(&self, stage: FaultStage) -> &[usize] {
        match stage {
            FaultStage::Map => &self.poison_map_tasks,
            FaultStage::Reduce => &self.poison_reduce_tasks,
        }
    }

    /// Whether `stage`/`index` is a designated straggler (primary
    /// executions sleep [`FaultPlan::straggle_millis`]).
    pub fn straggles(&self, stage: FaultStage, index: usize) -> bool {
        let list = match stage {
            FaultStage::Map => &self.straggle_map_tasks,
            FaultStage::Reduce => &self.straggle_reduce_tasks,
        };
        list.contains(&index)
    }

    /// Whether `stage`/`index` is on a kill list — its next primary
    /// attempt must take the worker down instead of failing softly.
    pub fn kills(&self, stage: FaultStage, index: usize) -> bool {
        let list = match stage {
            FaultStage::Map => &self.kill_map_tasks,
            FaultStage::Reduce => &self.kill_reduce_tasks,
        };
        list.contains(&index)
    }

    /// Whether attempt number `attempt` (0-based) of the given task fails.
    ///
    /// Deterministic in `(seed, stage, index, attempt)` alone — independent
    /// of thread interleaving, shuffle mode, and which engine replays the
    /// task — which is the property every retry/replay guarantee in this
    /// crate rests on.
    pub fn fires(&self, stage: FaultStage, index: usize, attempt: u32) -> bool {
        if self.poison(stage).contains(&index) {
            return true;
        }
        let rate = match stage {
            FaultStage::Map => self.map_rate,
            FaultStage::Reduce => self.reduce_rate,
        };
        if rate <= 0.0 {
            return false;
        }
        // Sequential multiply-add combining (not XOR) so no component can
        // cancel another; SplitMix64 inside `seed_from_u64` finishes the
        // mixing. One cheap RNG per key keeps draws independent across
        // (stage, task, attempt) without any shared stream to order.
        let stage_tag: u64 = match stage {
            FaultStage::Map => 0x6d61_7000,
            FaultStage::Reduce => 0x7265_6400,
        };
        let mut key = self.seed ^ stage_tag;
        key = key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index as u64);
        key = key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(attempt));
        StdRng::seed_from_u64(key).random_bool(rate)
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = String;

    /// Parses the `--faults` / `MRASSIGN_FAULTS` spec grammar:
    /// comma-separated `key:value` pairs, e.g. `seed:7,rate:0.05`.
    /// Accepted keys: `seed`, `rate` (sets both stages), `map-rate`,
    /// `reduce-rate`, and the process-kill lists `kill-map` /
    /// `kill-reduce` (`+`-separated task indices, e.g. `kill-reduce:2+5`).
    /// Unknown keys, malformed values, and a key repeated by name fail
    /// loudly — silently letting the last duplicate win would hide typos
    /// in long specs. (`rate` alongside `map-rate` / `reduce-rate` is
    /// *not* a duplicate: the later key refines one stage, a documented
    /// layering.)
    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        const VOCAB: &str = "seed:<u64>, rate:<f64>, map-rate:<f64>, reduce-rate:<f64>, \
                             kill-map:<idx[+idx…]>, kill-reduce:<idx[+idx…]>";
        fn kill_list(key: &str, value: &str) -> Result<Vec<usize>, String> {
            value
                .split('+')
                .map(|idx| {
                    idx.parse()
                        .map_err(|e| format!("fault {key} index `{idx}`: {e}"))
                })
                .collect()
        }
        if spec.trim().is_empty() {
            return Err(format!("empty fault spec (expected {VOCAB})"));
        }
        let mut plan = FaultPlan::default();
        let mut seen: Vec<&str> = Vec::new();
        for part in spec.split(',') {
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| format!("fault spec part `{part}` is not key:value ({VOCAB})"))?;
            if seen.contains(&key) {
                return Err(format!("duplicate fault spec key `{key}` ({VOCAB})"));
            }
            seen.push(key);
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|e| format!("fault seed `{value}`: {e}"))?;
                }
                "rate" => {
                    let rate: f64 = value
                        .parse()
                        .map_err(|e| format!("fault rate `{value}`: {e}"))?;
                    plan.map_rate = rate;
                    plan.reduce_rate = rate;
                }
                "map-rate" => {
                    plan.map_rate = value
                        .parse()
                        .map_err(|e| format!("fault map-rate `{value}`: {e}"))?;
                }
                "reduce-rate" => {
                    plan.reduce_rate = value
                        .parse()
                        .map_err(|e| format!("fault reduce-rate `{value}`: {e}"))?;
                }
                "kill-map" => plan.kill_map_tasks = kill_list(key, value)?,
                "kill-reduce" => plan.kill_reduce_tasks = kill_list(key, value)?,
                other => {
                    return Err(format!(
                        "unknown fault spec key `{other}` (expected {VOCAB})"
                    ));
                }
            }
        }
        Ok(plan)
    }
}

/// How the engine moves map output into reducer partitions.
///
/// Both modes produce bit-identical [`crate::JobOutput`]s (outputs *and*
/// metrics); they differ only in peak memory and wall-clock cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShuffleMode {
    /// Materialize every reducer partition in memory before the reduce
    /// phase starts — the classic layout, fastest when the whole shuffle
    /// fits in RAM.
    #[default]
    Materialized,
    /// Stream the shuffle: a first pass over the map output does the byte
    /// accounting without storing any record, then reducers are fed in
    /// bounded blocks, re-deriving each block's records from the (required
    /// to be deterministic) mappers and routers. Peak memory is one reducer
    /// block plus one map task's output instead of the entire shuffle —
    /// recomputation traded for memory, the same bargain Spark strikes for
    /// narrow dependencies.
    Streaming,
    /// Overlap the phases: mapper threads emit partition-tagged record
    /// blocks into bounded channels while per-reducer-group consumer
    /// threads drain, account, and reassemble them concurrently — map,
    /// shuffle accounting, and reduce-side merge genuinely overlap instead
    /// of running as strict passes. Back-pressure via
    /// [`ClusterConfig::pipeline_depth`] bounds peak memory; determinism
    /// is preserved by sequence-numbered block reassembly per reducer.
    /// See [`crate::pipeline`] for the stage graph.
    Pipelined,
}

impl ShuffleMode {
    /// Every mode, in the order the `--shuffle` grammar lists them.
    pub const ALL: [ShuffleMode; 3] = [
        ShuffleMode::Materialized,
        ShuffleMode::Streaming,
        ShuffleMode::Pipelined,
    ];

    /// The name accepted by every `--shuffle` flag. [`std::str::FromStr`]
    /// parses and reports errors through this list, so adding a mode here
    /// is enough to extend the flag vocabulary everywhere.
    pub fn name(self) -> &'static str {
        match self {
            ShuffleMode::Materialized => "materialized",
            ShuffleMode::Streaming => "streaming",
            ShuffleMode::Pipelined => "pipelined",
        }
    }
}

impl std::str::FromStr for ShuffleMode {
    type Err = String;

    /// Parses the mode names used by every `--shuffle` flag (CLI and
    /// experiment binaries), so the vocabulary lives in one place.
    fn from_str(name: &str) -> Result<Self, Self::Err> {
        ShuffleMode::ALL
            .into_iter()
            .find(|mode| mode.name() == name)
            .ok_or_else(|| {
                let expected: Vec<&str> = ShuffleMode::ALL.map(ShuffleMode::name).to_vec();
                format!(
                    "unknown shuffle mode `{name}` (expected {})",
                    expected.join("|")
                )
            })
    }
}

/// How the pipelined engine assigns partition finalization (the per
/// partition run-merge + reduce) to consumer threads once the stage
/// channels close.
///
/// Purely an execution-time choice: outputs and the deterministic metrics
/// subset are bit-identical across modes (finalized partitions are slotted
/// by partition index regardless of which thread processed them); only
/// [`crate::PipelineMetrics`]' finalize counters differ. Ignored by the
/// pass-based shuffle modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FinalizeMode {
    /// Each consumer group finalizes exactly the contiguous partition
    /// range it drained. Under a hot reducer the owning thread serializes
    /// its whole range while the other consumers idle — the skew
    /// pathology the paper's load-balancing thesis warns about.
    #[default]
    Static,
    /// Completed partitions go into a shared finalize queue (popped
    /// largest-bytes-first, LPT-style) that every consumer thread steals
    /// from, so a hot partition's neighbors migrate to idle threads.
    Stealing,
}

impl FinalizeMode {
    /// Every mode, in the order the `--finalize` grammar lists them.
    pub const ALL: [FinalizeMode; 2] = [FinalizeMode::Static, FinalizeMode::Stealing];

    /// The name accepted by every `--finalize` flag and the
    /// `MRASSIGN_FINALIZE` env var; [`std::str::FromStr`] parses and
    /// reports errors through this list.
    pub fn name(self) -> &'static str {
        match self {
            FinalizeMode::Static => "static",
            FinalizeMode::Stealing => "stealing",
        }
    }
}

impl std::str::FromStr for FinalizeMode {
    type Err = String;

    /// Parses the mode names used by every `--finalize` flag, so a typo
    /// fails loudly instead of silently reverting to the default.
    fn from_str(name: &str) -> Result<Self, Self::Err> {
        FinalizeMode::ALL
            .into_iter()
            .find(|mode| mode.name() == name)
            .ok_or_else(|| {
                let expected: Vec<&str> = FinalizeMode::ALL.map(FinalizeMode::name).to_vec();
                format!(
                    "unknown finalize mode `{name}` (expected {})",
                    expected.join("|")
                )
            })
    }
}

/// Simulated cluster parameters.
///
/// Rates are bytes per simulated second. Defaults approximate a small
/// commodity cluster and, more importantly, make the map/shuffle/reduce
/// terms comparable in magnitude so tradeoffs are visible.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of identical workers executing tasks.
    pub workers: usize,
    /// Map-side processing rate (bytes/second/worker).
    pub map_rate: f64,
    /// Reduce-side processing rate (bytes/second/worker).
    pub reduce_rate: f64,
    /// Aggregate shuffle bandwidth for the whole cluster (bytes/second).
    pub network_bandwidth: f64,
    /// Fixed per-task scheduling overhead (seconds); models task startup
    /// and is what penalizes "one reducer per pair" schemes.
    pub task_overhead: f64,
    /// Number of OS threads used to *actually* execute map tasks. Purely a
    /// wall-clock optimization; simulated time ignores it.
    pub map_threads: usize,
    /// How the shuffle is executed; purely a memory/wall-clock choice —
    /// outputs and the deterministic metrics subset are identical across
    /// modes.
    pub shuffle: ShuffleMode,
    /// [`ShuffleMode::Streaming`]: reducer partitions resident per
    /// re-derivation sweep. Larger blocks cost memory and save map
    /// recomputation. Must be ≥ 1.
    pub streaming_reducer_block: usize,
    /// [`ShuffleMode::Streaming`]: map tasks executed per batch — the
    /// bound on resident map outputs and the unit `map_threads` works
    /// over. Must be ≥ 1.
    pub streaming_map_batch: usize,
    /// [`ShuffleMode::Pipelined`]: bounded capacity (in blocks) of each
    /// mapper → consumer channel. Depth 1 is maximal back-pressure
    /// (mappers lock-step with consumers); larger depths buy overlap with
    /// memory. Peak in-flight blocks are bounded by
    /// `pipeline_depth × consumer groups`. Must be ≥ 1.
    pub pipeline_depth: usize,
    /// [`ShuffleMode::Pipelined`]: how completed partitions are assigned
    /// to consumer threads for finalization. See [`FinalizeMode`].
    pub finalize_mode: FinalizeMode,
    /// [`ShuffleMode::Pipelined`]: out-of-core memory budget, in
    /// [`ByteSized`](crate::ByteSized) bytes of buffered run data **per
    /// consumer group** (total residency is therefore bounded by
    /// `budget × consumer groups`). When a group's buffered runs exceed
    /// the budget after a block lands, it seals and spills its largest
    /// runs to length-prefixed temp files until back under budget, and
    /// finalize streams the spilled runs through an external k-way merge.
    /// `None` (the default) keeps every run in memory; `Some(0)` is
    /// rejected by [`ClusterConfig::validate`]. Outputs are bit-identical
    /// at any budget — only wall-clock and the spill counters in
    /// [`crate::PipelineMetrics`] change. The budget is enforced at block
    /// granularity (a block is never split across runs, which is what
    /// keeps the merge deterministic), so a single oversized block may
    /// transiently exceed it before being spilled whole.
    pub memory_budget: Option<u64>,
    /// Directory spill temp files are created in; `None` (the default)
    /// uses the OS temp dir. Files are named uniquely per process and
    /// deleted when the last holder drops — on success, error, and panic
    /// unwinds alike.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Checkpoint/resume root. `None` (the default) disables
    /// checkpointing. When set, every finalized reducer partition's output
    /// is persisted under this directory (partition files in the spill
    /// record format, committed tmp-write → fsync → rename, then recorded
    /// in a versioned, checksummed manifest keyed by a deterministic job
    /// fingerprint of config + workload). A later run of the *same* job
    /// over the same inputs detects the manifest, verifies it, replays
    /// only the missing partitions, and merges the checkpointed outputs
    /// bit-identically into [`crate::JobOutput`] — a corrupt or
    /// mismatched manifest falls back to a fresh run with a warning,
    /// never a panic. `checkpoint_hits`/`checkpoint_misses` in
    /// [`crate::PipelineMetrics`] report what was skipped. On job start
    /// the directory is swept for orphaned temp files left by killed
    /// processes (dead PID in the filename, or stale by age).
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Maximum *retries* per task (attempts = `retry_budget + 1`) when a
    /// [`FaultPlan`] injects failures. With no plan configured the budget
    /// is inert. Failed attempts are replayed deterministically — mappers
    /// and routers are deterministic by contract, so a retried task
    /// re-emits exactly what the never-failed run would have.
    pub retry_budget: u32,
    /// Speculatively re-execute straggler tasks: once the pipelined
    /// engine's task cursor (map side) or finalize queue (reduce side,
    /// [`FinalizeMode::Stealing`] only) runs dry, idle threads re-run
    /// still-in-flight tasks, ranked largest-first by the same LPT rule
    /// [`Schedule::lpt`] schedules with. First completion wins via a
    /// per-task resolution slot; since tasks are deterministic, outputs
    /// are bit-identical whichever copy wins. Ignored by the pass-based
    /// shuffle modes (they have no idle threads to speculate on).
    pub speculation: bool,
    /// What happens when a task exhausts `retry_budget`. See [`DlqMode`].
    pub dlq_mode: DlqMode,
    /// The seeded fault-injection schedule; `None` (the default) injects
    /// nothing and leaves every engine path byte-for-byte on the
    /// fault-free fast path.
    pub fault_plan: Option<FaultPlan>,
    /// Garbage collection for old checkpoint sessions. `None` (the
    /// default) never prunes — the pre-GC behaviour, where `job-*`
    /// session directories accumulate under
    /// [`checkpoint_dir`](ClusterConfig::checkpoint_dir) forever. When
    /// set (requires a checkpoint dir), stale sibling sessions are
    /// removed at job start, after this job's own session opens; the
    /// running job's directory is never pruned. Prune counts surface in
    /// [`crate::PipelineMetrics::checkpoint_pruned`]. Execution-only:
    /// retention does not affect outputs and is excluded from the job
    /// fingerprint.
    pub checkpoint_retain: Option<CheckpointRetain>,
}

/// Retention policy for checkpoint session directories — see
/// [`ClusterConfig::checkpoint_retain`]. At least one criterion must be
/// set; [`ClusterConfig::validate`] rejects the all-`None` policy as a
/// plumbing bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointRetain {
    /// Keep at most this many sessions, *including* the currently
    /// running job's own session; the oldest (by manifest mtime) beyond
    /// the quota are removed. `Some(0)` is rejected by validation — it
    /// would claim to retain nothing, yet the current session always
    /// survives.
    pub max_sessions: Option<usize>,
    /// Remove sessions whose manifest was last written longer than this
    /// ago. Resuming a session refreshes its manifest, so actively
    /// shared checkpoints stay young.
    pub max_age: Option<std::time::Duration>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 8,
            map_rate: 128.0 * 1024.0 * 1024.0,
            reduce_rate: 64.0 * 1024.0 * 1024.0,
            network_bandwidth: 256.0 * 1024.0 * 1024.0,
            task_overhead: 0.05,
            map_threads: 1,
            shuffle: ShuffleMode::Materialized,
            streaming_reducer_block: 64,
            streaming_map_batch: 256,
            pipeline_depth: 4,
            finalize_mode: FinalizeMode::Static,
            memory_budget: None,
            spill_dir: None,
            checkpoint_dir: None,
            retry_budget: 0,
            speculation: false,
            dlq_mode: DlqMode::Fail,
            fault_plan: None,
            checkpoint_retain: None,
        }
    }
}

impl ClusterConfig {
    /// A single-worker configuration, useful for computing serial time.
    pub fn serial() -> Self {
        ClusterConfig {
            workers: 1,
            map_threads: 1,
            ..ClusterConfig::default()
        }
    }

    /// Validates the configuration before a run: at least one worker,
    /// every block/batch/depth knob at least 1, and every time/rate knob
    /// finite. The knobs are checked regardless of the configured
    /// [`ShuffleMode`] — a zero value is always a misconfiguration (the
    /// streaming engine would `step_by(0)` and the pipelined engine would
    /// build zero-capacity channels), and a NaN/infinite rate would
    /// poison every derived task cost — catching either here names the
    /// knob instead of failing mid-job.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.workers == 0 {
            return Err(SimError::NoWorkers);
        }
        for (knob, value) in [
            ("streaming_reducer_block", self.streaming_reducer_block),
            ("streaming_map_batch", self.streaming_map_batch),
            ("pipeline_depth", self.pipeline_depth),
        ] {
            if value == 0 {
                return Err(SimError::InvalidKnob { knob });
            }
        }
        if self.memory_budget == Some(0) {
            // A zero budget would demand spilling every block before it
            // can even be buffered; `None` is the way to say "unbounded".
            return Err(SimError::InvalidKnob {
                knob: "memory_budget",
            });
        }
        if self
            .checkpoint_dir
            .as_deref()
            .is_some_and(|dir| dir.as_os_str().is_empty())
        {
            // `Some("")` is a flag-plumbing bug, not a request for the
            // current directory; `None` is how "no checkpointing" is said.
            return Err(SimError::InvalidKnob {
                knob: "checkpoint_dir",
            });
        }
        if let Some(retain) = &self.checkpoint_retain {
            if self.checkpoint_dir.is_none() {
                // Retention without a checkpoint dir has nothing to
                // prune; asking for it is a plumbing bug worth naming.
                return Err(SimError::InvalidKnob {
                    knob: "checkpoint_retain",
                });
            }
            if retain.max_sessions == Some(0) {
                // "Retain zero sessions" contradicts the invariant that
                // the running job's own session always survives.
                return Err(SimError::InvalidKnob {
                    knob: "checkpoint_retain.max_sessions",
                });
            }
            if retain.max_sessions.is_none() && retain.max_age.is_none() {
                return Err(SimError::InvalidKnob {
                    knob: "checkpoint_retain",
                });
            }
        }
        for (knob, value) in [
            ("map_rate", self.map_rate),
            ("reduce_rate", self.reduce_rate),
            ("network_bandwidth", self.network_bandwidth),
            ("task_overhead", self.task_overhead),
        ] {
            if !value.is_finite() {
                return Err(SimError::NonFiniteKnob { knob });
            }
        }
        if let Some(plan) = &self.fault_plan {
            for (knob, rate) in [
                ("fault_plan.map_rate", plan.map_rate),
                ("fault_plan.reduce_rate", plan.reduce_rate),
            ] {
                if !rate.is_finite() {
                    return Err(SimError::NonFiniteKnob { knob });
                }
                if !(0.0..=1.0).contains(&rate) {
                    return Err(SimError::FaultRateOutOfRange { knob });
                }
            }
        }
        Ok(())
    }

    /// Simulated duration of a map task over `bytes` input bytes.
    pub fn map_task_seconds(&self, bytes: u64) -> f64 {
        self.task_overhead + bytes as f64 / self.map_rate
    }

    /// Simulated duration of a reduce task over `bytes` of reducer input.
    pub fn reduce_task_seconds(&self, bytes: u64) -> f64 {
        self.task_overhead + bytes as f64 / self.reduce_rate
    }

    /// Simulated duration of shuffling `bytes` across the shared pipe.
    pub fn shuffle_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.network_bandwidth
    }
}

/// The simulated cost of one task, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCost(pub f64);

/// The result of scheduling one phase's tasks onto the workers.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Finishing time of each worker (seconds).
    pub worker_finish: Vec<f64>,
    /// The phase makespan: `worker_finish` maximum.
    pub makespan: f64,
    /// Total task-seconds scheduled (serial time of the phase).
    pub total_work: f64,
}

impl Schedule {
    /// Schedules `tasks` on `workers` machines with the LPT greedy rule:
    /// sort tasks longest-first, always give the next task to the
    /// least-loaded worker. LPT is a 4/3-approximation of the optimal
    /// makespan, and more to the point it is what a real scheduler's
    /// outcome looks like for independent tasks.
    pub fn lpt(tasks: &[TaskCost], workers: usize) -> Schedule {
        assert!(workers > 0, "Schedule::lpt requires at least one worker");
        let order = Schedule::lpt_order(tasks);

        // Binary heap of (load, worker) would need ordered floats; with the
        // small worker counts used here a linear argmin scan is simpler and
        // never the bottleneck (tasks dominate).
        let mut finish = vec![0.0f64; workers];
        for &t in &order {
            let (idx, _) = finish
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("at least one worker");
            finish[idx] += tasks[t].0;
        }
        let makespan = finish.iter().cloned().fold(0.0, f64::max);
        let total_work = tasks.iter().map(|t| t.0).sum();
        Schedule {
            worker_finish: finish,
            makespan,
            total_work,
        }
    }

    /// Task indices in the order the LPT rule considers them: longest
    /// first, lowest index on ties (so the rank is reproducible). This is
    /// the single ranking both [`Schedule::lpt`] and the pipelined
    /// engine's speculative re-execution of stragglers schedule by.
    /// `total_cmp` keeps it panic-free even for NaN or infinite costs
    /// (validation rejects the knobs that would produce them, but a
    /// direct caller must get an order, not a panic).
    pub fn lpt_order(tasks: &[TaskCost]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        order.sort_by(|&a, &b| tasks[b].0.total_cmp(&tasks[a].0).then(a.cmp(&b)));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ClusterConfig::default().validate().unwrap();
        ClusterConfig::serial().validate().unwrap();
    }

    #[test]
    fn zero_workers_rejected() {
        let cfg = ClusterConfig {
            workers: 0,
            ..Default::default()
        };
        assert_eq!(cfg.validate(), Err(SimError::NoWorkers));
    }

    /// The latent gap this PR closes: a zero streaming block/batch (or a
    /// zero pipeline depth) used to pass validation and only fail deep in
    /// the engine. Every knob is now rejected by name.
    #[test]
    fn zero_engine_knobs_rejected_by_name() {
        type Zeroer = fn(&mut ClusterConfig);
        let cases: [(&str, Zeroer); 3] = [
            ("streaming_reducer_block", |c| c.streaming_reducer_block = 0),
            ("streaming_map_batch", |c| c.streaming_map_batch = 0),
            ("pipeline_depth", |c| c.pipeline_depth = 0),
        ];
        for (knob, zero) in cases {
            for shuffle in [
                ShuffleMode::Materialized,
                ShuffleMode::Streaming,
                ShuffleMode::Pipelined,
            ] {
                let mut cfg = ClusterConfig {
                    shuffle,
                    ..ClusterConfig::default()
                };
                zero(&mut cfg);
                assert_eq!(
                    cfg.validate(),
                    Err(SimError::InvalidKnob { knob }),
                    "{knob} under {shuffle:?}"
                );
            }
        }
    }

    /// `Some(0)` is a contradiction (spill everything before buffering
    /// anything); `None` is how "unbounded" is spelled. Rejected by name,
    /// like the other zero knobs; any positive budget validates.
    #[test]
    fn zero_memory_budget_rejected_by_name() {
        let cfg = ClusterConfig {
            memory_budget: Some(0),
            ..ClusterConfig::default()
        };
        assert_eq!(
            cfg.validate(),
            Err(SimError::InvalidKnob {
                knob: "memory_budget"
            })
        );
        let cfg = ClusterConfig {
            memory_budget: Some(1),
            ..ClusterConfig::default()
        };
        assert_eq!(cfg.validate(), Ok(()));
        assert_eq!(ClusterConfig::default().memory_budget, None);
    }

    /// Retention is only meaningful next to a checkpoint dir, and a
    /// policy with no criterion (or a zero-session quota) is a plumbing
    /// bug — each contradiction is rejected by name.
    #[test]
    fn checkpoint_retain_contradictions_rejected_by_name() {
        let retain_without_dir = ClusterConfig {
            checkpoint_retain: Some(CheckpointRetain {
                max_sessions: Some(4),
                max_age: None,
            }),
            ..ClusterConfig::default()
        };
        assert_eq!(
            retain_without_dir.validate(),
            Err(SimError::InvalidKnob {
                knob: "checkpoint_retain"
            })
        );

        let base = ClusterConfig {
            checkpoint_dir: Some(std::env::temp_dir()),
            ..ClusterConfig::default()
        };
        let zero_quota = ClusterConfig {
            checkpoint_retain: Some(CheckpointRetain {
                max_sessions: Some(0),
                max_age: None,
            }),
            ..base.clone()
        };
        assert_eq!(
            zero_quota.validate(),
            Err(SimError::InvalidKnob {
                knob: "checkpoint_retain.max_sessions"
            })
        );
        let no_criterion = ClusterConfig {
            checkpoint_retain: Some(CheckpointRetain::default()),
            ..base.clone()
        };
        assert_eq!(
            no_criterion.validate(),
            Err(SimError::InvalidKnob {
                knob: "checkpoint_retain"
            })
        );
        let ok = ClusterConfig {
            checkpoint_retain: Some(CheckpointRetain {
                max_sessions: Some(2),
                max_age: Some(std::time::Duration::from_secs(3600)),
            }),
            ..base
        };
        assert_eq!(ok.validate(), Ok(()));
    }

    /// The latent panic this PR closes: a NaN (or infinite) time knob used
    /// to pass validation and reach `Schedule::lpt`'s
    /// `partial_cmp(...).expect` as a mid-job panic. Each non-finite knob
    /// is now rejected by name before the job starts.
    #[test]
    fn non_finite_time_knobs_rejected_by_name() {
        type Setter = fn(&mut ClusterConfig, f64);
        let cases: [(&str, Setter); 4] = [
            ("map_rate", |c, v| c.map_rate = v),
            ("reduce_rate", |c, v| c.reduce_rate = v),
            ("network_bandwidth", |c, v| c.network_bandwidth = v),
            ("task_overhead", |c, v| c.task_overhead = v),
        ];
        for (knob, set) in cases {
            for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                let mut cfg = ClusterConfig::default();
                set(&mut cfg, bad);
                assert_eq!(
                    cfg.validate(),
                    Err(SimError::NonFiniteKnob { knob }),
                    "{knob} = {bad}"
                );
            }
        }
    }

    /// Defense in depth for direct callers: even with a NaN or infinite
    /// task cost (which validation now keeps out of jobs), `lpt` schedules
    /// deterministically via `total_cmp` instead of panicking.
    #[test]
    fn lpt_tolerates_non_finite_costs_without_panicking() {
        let tasks = vec![
            TaskCost(f64::NAN),
            TaskCost(1.0),
            TaskCost(f64::INFINITY),
            TaskCost(2.0),
        ];
        let s = Schedule::lpt(&tasks, 2);
        assert_eq!(s.worker_finish.len(), 2);
        // `total_cmp` is a total order, so even garbage-in schedules are
        // bit-for-bit reproducible across calls (NaN propagates into the
        // loads, hence the bit comparison rather than `==`).
        let a = Schedule::lpt(&tasks, 2);
        let bits = |sched: &Schedule| -> Vec<u64> {
            sched.worker_finish.iter().map(|f| f.to_bits()).collect()
        };
        assert_eq!(bits(&s), bits(&a));
    }

    #[test]
    fn shuffle_mode_names_round_trip() {
        for mode in ShuffleMode::ALL {
            assert_eq!(mode.name().parse::<ShuffleMode>(), Ok(mode));
        }
        // The error names every accepted mode, straight from `ALL`.
        let err = "mystery".parse::<ShuffleMode>().unwrap_err();
        for mode in ShuffleMode::ALL {
            assert!(err.contains(mode.name()), "{err}");
        }
    }

    #[test]
    fn finalize_mode_names_round_trip() {
        for mode in FinalizeMode::ALL {
            assert_eq!(mode.name().parse::<FinalizeMode>(), Ok(mode));
        }
        assert_eq!(FinalizeMode::default(), FinalizeMode::Static);
        let err = "mystery".parse::<FinalizeMode>().unwrap_err();
        for mode in FinalizeMode::ALL {
            assert!(err.contains(mode.name()), "{err}");
        }
    }

    #[test]
    fn dlq_mode_names_round_trip() {
        for mode in DlqMode::ALL {
            assert_eq!(mode.name().parse::<DlqMode>(), Ok(mode));
        }
        assert_eq!(DlqMode::default(), DlqMode::Fail);
        let err = "mystery".parse::<DlqMode>().unwrap_err();
        for mode in DlqMode::ALL {
            assert!(err.contains(mode.name()), "{err}");
        }
    }

    /// The fault schedule is a pure function of (seed, stage, index,
    /// attempt): replays agree, seeds decorrelate, and extreme rates
    /// behave like constants.
    #[test]
    fn fault_plan_fires_deterministically() {
        let plan = FaultPlan::seeded(7, 0.5);
        for stage in [FaultStage::Map, FaultStage::Reduce] {
            for index in 0..64 {
                for attempt in 0..4 {
                    assert_eq!(
                        plan.fires(stage, index, attempt),
                        plan.fires(stage, index, attempt),
                        "replay must agree: {stage:?} {index} {attempt}"
                    );
                }
            }
        }
        let never = FaultPlan::seeded(7, 0.0);
        let always = FaultPlan::seeded(7, 1.0);
        for index in 0..64 {
            assert!(!never.fires(FaultStage::Map, index, 0));
            assert!(always.fires(FaultStage::Reduce, index, 0));
        }
        // The rate is actually a rate: at 0.5, both outcomes occur.
        let hits = (0..256)
            .filter(|&i| plan.fires(FaultStage::Map, i, 0))
            .count();
        assert!((64..192).contains(&hits), "0.5-rate plan hit {hits}/256");
        // Attempts draw independently: some task that fails attempt 0
        // passes attempt 1 (the whole point of a retry).
        assert!((0..256)
            .any(|i| { plan.fires(FaultStage::Map, i, 0) && !plan.fires(FaultStage::Map, i, 1) }));
    }

    #[test]
    fn fault_plan_poison_and_straggle_lists() {
        let plan = FaultPlan {
            poison_map_tasks: vec![3],
            poison_reduce_tasks: vec![1],
            straggle_map_tasks: vec![9],
            straggle_millis: 5,
            ..FaultPlan::default()
        };
        // Poison beats any rate (here zero) on every attempt.
        for attempt in 0..16 {
            assert!(plan.fires(FaultStage::Map, 3, attempt));
            assert!(plan.fires(FaultStage::Reduce, 1, attempt));
        }
        assert!(!plan.fires(FaultStage::Map, 4, 0));
        assert!(plan.straggles(FaultStage::Map, 9));
        assert!(!plan.straggles(FaultStage::Reduce, 9));
    }

    #[test]
    fn fault_spec_parses_and_rejects_typos() {
        let plan: FaultPlan = "seed:7,rate:0.05".parse().unwrap();
        assert_eq!(plan.seed, 7);
        assert!((plan.map_rate - 0.05).abs() < 1e-12);
        assert!((plan.reduce_rate - 0.05).abs() < 1e-12);
        let split: FaultPlan = "map-rate:0.1,reduce-rate:0.2".parse().unwrap();
        assert!((split.map_rate - 0.1).abs() < 1e-12);
        assert!((split.reduce_rate - 0.2).abs() < 1e-12);
        for bad in ["", "seed:7,chaos:0.5", "seed", "rate:lots"] {
            let err = bad.parse::<FaultPlan>().unwrap_err();
            assert!(err.contains("seed") || err.contains("rate"), "{bad}: {err}");
        }
    }

    /// The kill lists ride the same spec grammar as every other fault
    /// knob, with `+`-separated indices (the comma is taken by the pair
    /// separator), and `kills()` consults exactly the right list.
    #[test]
    fn fault_spec_parses_kill_lists() {
        let plan: FaultPlan = "seed:7,kill-map:3,kill-reduce:2+5".parse().unwrap();
        assert_eq!(plan.kill_map_tasks, vec![3]);
        assert_eq!(plan.kill_reduce_tasks, vec![2, 5]);
        assert!(plan.kills(FaultStage::Map, 3));
        assert!(!plan.kills(FaultStage::Reduce, 3));
        assert!(plan.kills(FaultStage::Reduce, 5));
        let err = "kill-map:banana".parse::<FaultPlan>().unwrap_err();
        assert!(err.contains("kill-map"), "{err}");
        let err = "kill-map:1,kill-map:2".parse::<FaultPlan>().unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    /// An empty checkpoint path is a plumbing bug (`Some("")` from a flag
    /// with a missing value), rejected by name like every other knob.
    #[test]
    fn empty_checkpoint_dir_rejected_by_name() {
        let cfg = ClusterConfig {
            checkpoint_dir: Some(std::path::PathBuf::new()),
            ..ClusterConfig::default()
        };
        assert_eq!(
            cfg.validate(),
            Err(SimError::InvalidKnob {
                knob: "checkpoint_dir"
            })
        );
        let cfg = ClusterConfig {
            checkpoint_dir: Some(std::path::PathBuf::from("ckpt")),
            ..ClusterConfig::default()
        };
        assert_eq!(cfg.validate(), Ok(()));
        assert_eq!(ClusterConfig::default().checkpoint_dir, None);
    }

    /// A repeated key is a typo, not a request for last-wins semantics.
    #[test]
    fn fault_spec_rejects_duplicate_keys() {
        for dup in [
            "seed:1,seed:2",
            "rate:0.1,rate:0.2",
            "map-rate:0.1,rate:0.2,map-rate:0.3",
            "seed:1,reduce-rate:0.1,reduce-rate:0.1",
        ] {
            let err = dup.parse::<FaultPlan>().unwrap_err();
            assert!(err.contains("duplicate"), "{dup}: {err}");
        }
        // `rate` plus a stage-specific refinement is layering, not a
        // duplicate: `rate` seeds both stages, `map-rate` then overrides
        // one of them.
        let plan: FaultPlan = "rate:0.1,map-rate:0.3".parse().unwrap();
        assert!((plan.map_rate - 0.3).abs() < 1e-12);
        assert!((plan.reduce_rate - 0.1).abs() < 1e-12);
    }

    /// Fault rates are validated like every other knob: by name, before
    /// the job starts.
    #[test]
    fn fault_rates_validated_by_name() {
        let mk = |map_rate, reduce_rate| ClusterConfig {
            fault_plan: Some(FaultPlan {
                map_rate,
                reduce_rate,
                ..FaultPlan::default()
            }),
            ..ClusterConfig::default()
        };
        assert_eq!(
            mk(f64::NAN, 0.0).validate(),
            Err(SimError::NonFiniteKnob {
                knob: "fault_plan.map_rate"
            })
        );
        assert_eq!(
            mk(0.0, 1.5).validate(),
            Err(SimError::FaultRateOutOfRange {
                knob: "fault_plan.reduce_rate"
            })
        );
        assert_eq!(
            mk(-0.1, 0.0).validate(),
            Err(SimError::FaultRateOutOfRange {
                knob: "fault_plan.map_rate"
            })
        );
        mk(0.0, 1.0).validate().unwrap();
        // The retry/speculation/dlq knobs are valid in every combination.
        ClusterConfig {
            retry_budget: 3,
            speculation: true,
            dlq_mode: DlqMode::Capture,
            fault_plan: Some(FaultPlan::seeded(1, 0.5)),
            ..ClusterConfig::default()
        }
        .validate()
        .unwrap();
    }

    /// `lpt_order` is the rank `lpt` schedules by: longest first, index
    /// ascending on ties, and `lpt` built on top of it is unchanged.
    #[test]
    fn lpt_order_ranks_longest_first() {
        let tasks = vec![TaskCost(2.0), TaskCost(5.0), TaskCost(2.0), TaskCost(9.0)];
        assert_eq!(Schedule::lpt_order(&tasks), vec![3, 1, 0, 2]);
        assert_eq!(Schedule::lpt_order(&[]), Vec::<usize>::new());
    }

    #[test]
    fn task_costs_scale_with_bytes() {
        let cfg = ClusterConfig {
            task_overhead: 1.0,
            map_rate: 100.0,
            reduce_rate: 50.0,
            network_bandwidth: 10.0,
            ..Default::default()
        };
        assert!((cfg.map_task_seconds(200) - 3.0).abs() < 1e-12);
        assert!((cfg.reduce_task_seconds(200) - 5.0).abs() < 1e-12);
        assert!((cfg.shuffle_seconds(200) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn lpt_balances_equal_tasks() {
        let tasks = vec![TaskCost(1.0); 8];
        let s = Schedule::lpt(&tasks, 4);
        assert!((s.makespan - 2.0).abs() < 1e-12);
        assert!((s.total_work - 8.0).abs() < 1e-12);
        assert!(s.worker_finish.iter().all(|&f| (f - 2.0).abs() < 1e-12));
    }

    #[test]
    fn lpt_handles_skewed_tasks() {
        // One long task dominates: makespan equals its duration.
        let tasks = vec![TaskCost(10.0), TaskCost(1.0), TaskCost(1.0), TaskCost(1.0)];
        let s = Schedule::lpt(&tasks, 4);
        assert!((s.makespan - 10.0).abs() < 1e-12);
    }

    #[test]
    fn lpt_single_worker_is_serial() {
        let tasks = vec![TaskCost(2.0), TaskCost(3.0), TaskCost(5.0)];
        let s = Schedule::lpt(&tasks, 1);
        assert!((s.makespan - 10.0).abs() < 1e-12);
        assert!((s.makespan - s.total_work).abs() < 1e-12);
    }

    #[test]
    fn lpt_no_tasks_is_zero() {
        let s = Schedule::lpt(&[], 4);
        assert_eq!(s.makespan, 0.0);
        assert_eq!(s.total_work, 0.0);
    }

    #[test]
    fn lpt_makespan_at_least_average_and_max() {
        let tasks: Vec<TaskCost> = (1..=13).map(|i| TaskCost(i as f64)).collect();
        let workers = 3;
        let s = Schedule::lpt(&tasks, workers);
        let total: f64 = (1..=13).map(|i| i as f64).sum();
        assert!(s.makespan >= total / workers as f64 - 1e-9);
        assert!(s.makespan >= 13.0 - 1e-9);
        // And within the LPT guarantee of 4/3 OPT + ... vs the trivial LB.
        let lb = (total / workers as f64).max(13.0);
        assert!(s.makespan <= lb * 4.0 / 3.0 + 1e-9);
    }
}
