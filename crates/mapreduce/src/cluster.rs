//! The discrete-event cluster model: workers, task costs, and phase
//! makespans.
//!
//! The paper's tradeoff (ii) — reducer capacity vs. *parallelism* — needs a
//! notion of time. We model a cluster of `workers` identical machines;
//! each map or reduce task has a simulated duration derived from the bytes
//! it processes, tasks are scheduled greedily longest-first (LPT) onto the
//! least-loaded worker, and a phase's makespan is the maximum worker
//! finishing time. The shuffle is modeled as a shared network pipe.
//!
//! The model is deliberately simple — the quantities the paper reasons
//! about (few big reducers ⇒ long reduce phase; many small reducers ⇒ more
//! communication but shorter reduce phase) emerge directly.

use crate::error::SimError;

/// How the engine moves map output into reducer partitions.
///
/// Both modes produce bit-identical [`crate::JobOutput`]s (outputs *and*
/// metrics); they differ only in peak memory and wall-clock cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShuffleMode {
    /// Materialize every reducer partition in memory before the reduce
    /// phase starts — the classic layout, fastest when the whole shuffle
    /// fits in RAM.
    #[default]
    Materialized,
    /// Stream the shuffle: a first pass over the map output does the byte
    /// accounting without storing any record, then reducers are fed in
    /// bounded blocks, re-deriving each block's records from the (required
    /// to be deterministic) mappers and routers. Peak memory is one reducer
    /// block plus one map task's output instead of the entire shuffle —
    /// recomputation traded for memory, the same bargain Spark strikes for
    /// narrow dependencies.
    Streaming,
    /// Overlap the phases: mapper threads emit partition-tagged record
    /// blocks into bounded channels while per-reducer-group consumer
    /// threads drain, account, and reassemble them concurrently — map,
    /// shuffle accounting, and reduce-side merge genuinely overlap instead
    /// of running as strict passes. Back-pressure via
    /// [`ClusterConfig::pipeline_depth`] bounds peak memory; determinism
    /// is preserved by sequence-numbered block reassembly per reducer.
    /// See [`crate::pipeline`] for the stage graph.
    Pipelined,
}

impl ShuffleMode {
    /// Every mode, in the order the `--shuffle` grammar lists them.
    pub const ALL: [ShuffleMode; 3] = [
        ShuffleMode::Materialized,
        ShuffleMode::Streaming,
        ShuffleMode::Pipelined,
    ];

    /// The name accepted by every `--shuffle` flag. [`std::str::FromStr`]
    /// parses and reports errors through this list, so adding a mode here
    /// is enough to extend the flag vocabulary everywhere.
    pub fn name(self) -> &'static str {
        match self {
            ShuffleMode::Materialized => "materialized",
            ShuffleMode::Streaming => "streaming",
            ShuffleMode::Pipelined => "pipelined",
        }
    }
}

impl std::str::FromStr for ShuffleMode {
    type Err = String;

    /// Parses the mode names used by every `--shuffle` flag (CLI and
    /// experiment binaries), so the vocabulary lives in one place.
    fn from_str(name: &str) -> Result<Self, Self::Err> {
        ShuffleMode::ALL
            .into_iter()
            .find(|mode| mode.name() == name)
            .ok_or_else(|| {
                let expected: Vec<&str> = ShuffleMode::ALL.map(ShuffleMode::name).to_vec();
                format!(
                    "unknown shuffle mode `{name}` (expected {})",
                    expected.join("|")
                )
            })
    }
}

/// How the pipelined engine assigns partition finalization (the per
/// partition run-merge + reduce) to consumer threads once the stage
/// channels close.
///
/// Purely an execution-time choice: outputs and the deterministic metrics
/// subset are bit-identical across modes (finalized partitions are slotted
/// by partition index regardless of which thread processed them); only
/// [`crate::PipelineMetrics`]' finalize counters differ. Ignored by the
/// pass-based shuffle modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FinalizeMode {
    /// Each consumer group finalizes exactly the contiguous partition
    /// range it drained. Under a hot reducer the owning thread serializes
    /// its whole range while the other consumers idle — the skew
    /// pathology the paper's load-balancing thesis warns about.
    #[default]
    Static,
    /// Completed partitions go into a shared finalize queue (popped
    /// largest-bytes-first, LPT-style) that every consumer thread steals
    /// from, so a hot partition's neighbors migrate to idle threads.
    Stealing,
}

impl FinalizeMode {
    /// Every mode, in the order the `--finalize` grammar lists them.
    pub const ALL: [FinalizeMode; 2] = [FinalizeMode::Static, FinalizeMode::Stealing];

    /// The name accepted by every `--finalize` flag and the
    /// `MRASSIGN_FINALIZE` env var; [`std::str::FromStr`] parses and
    /// reports errors through this list.
    pub fn name(self) -> &'static str {
        match self {
            FinalizeMode::Static => "static",
            FinalizeMode::Stealing => "stealing",
        }
    }
}

impl std::str::FromStr for FinalizeMode {
    type Err = String;

    /// Parses the mode names used by every `--finalize` flag, so a typo
    /// fails loudly instead of silently reverting to the default.
    fn from_str(name: &str) -> Result<Self, Self::Err> {
        FinalizeMode::ALL
            .into_iter()
            .find(|mode| mode.name() == name)
            .ok_or_else(|| {
                let expected: Vec<&str> = FinalizeMode::ALL.map(FinalizeMode::name).to_vec();
                format!(
                    "unknown finalize mode `{name}` (expected {})",
                    expected.join("|")
                )
            })
    }
}

/// Simulated cluster parameters.
///
/// Rates are bytes per simulated second. Defaults approximate a small
/// commodity cluster and, more importantly, make the map/shuffle/reduce
/// terms comparable in magnitude so tradeoffs are visible.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of identical workers executing tasks.
    pub workers: usize,
    /// Map-side processing rate (bytes/second/worker).
    pub map_rate: f64,
    /// Reduce-side processing rate (bytes/second/worker).
    pub reduce_rate: f64,
    /// Aggregate shuffle bandwidth for the whole cluster (bytes/second).
    pub network_bandwidth: f64,
    /// Fixed per-task scheduling overhead (seconds); models task startup
    /// and is what penalizes "one reducer per pair" schemes.
    pub task_overhead: f64,
    /// Number of OS threads used to *actually* execute map tasks. Purely a
    /// wall-clock optimization; simulated time ignores it.
    pub map_threads: usize,
    /// How the shuffle is executed; purely a memory/wall-clock choice —
    /// outputs and the deterministic metrics subset are identical across
    /// modes.
    pub shuffle: ShuffleMode,
    /// [`ShuffleMode::Streaming`]: reducer partitions resident per
    /// re-derivation sweep. Larger blocks cost memory and save map
    /// recomputation. Must be ≥ 1.
    pub streaming_reducer_block: usize,
    /// [`ShuffleMode::Streaming`]: map tasks executed per batch — the
    /// bound on resident map outputs and the unit `map_threads` works
    /// over. Must be ≥ 1.
    pub streaming_map_batch: usize,
    /// [`ShuffleMode::Pipelined`]: bounded capacity (in blocks) of each
    /// mapper → consumer channel. Depth 1 is maximal back-pressure
    /// (mappers lock-step with consumers); larger depths buy overlap with
    /// memory. Peak in-flight blocks are bounded by
    /// `pipeline_depth × consumer groups`. Must be ≥ 1.
    pub pipeline_depth: usize,
    /// [`ShuffleMode::Pipelined`]: how completed partitions are assigned
    /// to consumer threads for finalization. See [`FinalizeMode`].
    pub finalize_mode: FinalizeMode,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 8,
            map_rate: 128.0 * 1024.0 * 1024.0,
            reduce_rate: 64.0 * 1024.0 * 1024.0,
            network_bandwidth: 256.0 * 1024.0 * 1024.0,
            task_overhead: 0.05,
            map_threads: 1,
            shuffle: ShuffleMode::Materialized,
            streaming_reducer_block: 64,
            streaming_map_batch: 256,
            pipeline_depth: 4,
            finalize_mode: FinalizeMode::Static,
        }
    }
}

impl ClusterConfig {
    /// A single-worker configuration, useful for computing serial time.
    pub fn serial() -> Self {
        ClusterConfig {
            workers: 1,
            map_threads: 1,
            ..ClusterConfig::default()
        }
    }

    /// Validates the configuration before a run: at least one worker,
    /// every block/batch/depth knob at least 1, and every time/rate knob
    /// finite. The knobs are checked regardless of the configured
    /// [`ShuffleMode`] — a zero value is always a misconfiguration (the
    /// streaming engine would `step_by(0)` and the pipelined engine would
    /// build zero-capacity channels), and a NaN/infinite rate would
    /// poison every derived task cost — catching either here names the
    /// knob instead of failing mid-job.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.workers == 0 {
            return Err(SimError::NoWorkers);
        }
        for (knob, value) in [
            ("streaming_reducer_block", self.streaming_reducer_block),
            ("streaming_map_batch", self.streaming_map_batch),
            ("pipeline_depth", self.pipeline_depth),
        ] {
            if value == 0 {
                return Err(SimError::InvalidKnob { knob });
            }
        }
        for (knob, value) in [
            ("map_rate", self.map_rate),
            ("reduce_rate", self.reduce_rate),
            ("network_bandwidth", self.network_bandwidth),
            ("task_overhead", self.task_overhead),
        ] {
            if !value.is_finite() {
                return Err(SimError::NonFiniteKnob { knob });
            }
        }
        Ok(())
    }

    /// Simulated duration of a map task over `bytes` input bytes.
    pub fn map_task_seconds(&self, bytes: u64) -> f64 {
        self.task_overhead + bytes as f64 / self.map_rate
    }

    /// Simulated duration of a reduce task over `bytes` of reducer input.
    pub fn reduce_task_seconds(&self, bytes: u64) -> f64 {
        self.task_overhead + bytes as f64 / self.reduce_rate
    }

    /// Simulated duration of shuffling `bytes` across the shared pipe.
    pub fn shuffle_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.network_bandwidth
    }
}

/// The simulated cost of one task, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCost(pub f64);

/// The result of scheduling one phase's tasks onto the workers.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Finishing time of each worker (seconds).
    pub worker_finish: Vec<f64>,
    /// The phase makespan: `worker_finish` maximum.
    pub makespan: f64,
    /// Total task-seconds scheduled (serial time of the phase).
    pub total_work: f64,
}

impl Schedule {
    /// Schedules `tasks` on `workers` machines with the LPT greedy rule:
    /// sort tasks longest-first, always give the next task to the
    /// least-loaded worker. LPT is a 4/3-approximation of the optimal
    /// makespan, and more to the point it is what a real scheduler's
    /// outcome looks like for independent tasks.
    pub fn lpt(tasks: &[TaskCost], workers: usize) -> Schedule {
        assert!(workers > 0, "Schedule::lpt requires at least one worker");
        let mut durations: Vec<f64> = tasks.iter().map(|t| t.0).collect();
        // Longest first. `total_cmp` keeps this panic-free even for NaN or
        // infinite costs (validation rejects the knobs that would produce
        // them, but a direct caller must get a schedule, not a panic).
        durations.sort_by(|a, b| b.total_cmp(a));

        // Binary heap of (load, worker) would need ordered floats; with the
        // small worker counts used here a linear argmin scan is simpler and
        // never the bottleneck (tasks dominate).
        let mut finish = vec![0.0f64; workers];
        for d in &durations {
            let (idx, _) = finish
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("at least one worker");
            finish[idx] += d;
        }
        let makespan = finish.iter().cloned().fold(0.0, f64::max);
        let total_work = durations.iter().sum();
        Schedule {
            worker_finish: finish,
            makespan,
            total_work,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ClusterConfig::default().validate().unwrap();
        ClusterConfig::serial().validate().unwrap();
    }

    #[test]
    fn zero_workers_rejected() {
        let cfg = ClusterConfig {
            workers: 0,
            ..Default::default()
        };
        assert_eq!(cfg.validate(), Err(SimError::NoWorkers));
    }

    /// The latent gap this PR closes: a zero streaming block/batch (or a
    /// zero pipeline depth) used to pass validation and only fail deep in
    /// the engine. Every knob is now rejected by name.
    #[test]
    fn zero_engine_knobs_rejected_by_name() {
        type Zeroer = fn(&mut ClusterConfig);
        let cases: [(&str, Zeroer); 3] = [
            ("streaming_reducer_block", |c| c.streaming_reducer_block = 0),
            ("streaming_map_batch", |c| c.streaming_map_batch = 0),
            ("pipeline_depth", |c| c.pipeline_depth = 0),
        ];
        for (knob, zero) in cases {
            for shuffle in [
                ShuffleMode::Materialized,
                ShuffleMode::Streaming,
                ShuffleMode::Pipelined,
            ] {
                let mut cfg = ClusterConfig {
                    shuffle,
                    ..ClusterConfig::default()
                };
                zero(&mut cfg);
                assert_eq!(
                    cfg.validate(),
                    Err(SimError::InvalidKnob { knob }),
                    "{knob} under {shuffle:?}"
                );
            }
        }
    }

    /// The latent panic this PR closes: a NaN (or infinite) time knob used
    /// to pass validation and reach `Schedule::lpt`'s
    /// `partial_cmp(...).expect` as a mid-job panic. Each non-finite knob
    /// is now rejected by name before the job starts.
    #[test]
    fn non_finite_time_knobs_rejected_by_name() {
        type Setter = fn(&mut ClusterConfig, f64);
        let cases: [(&str, Setter); 4] = [
            ("map_rate", |c, v| c.map_rate = v),
            ("reduce_rate", |c, v| c.reduce_rate = v),
            ("network_bandwidth", |c, v| c.network_bandwidth = v),
            ("task_overhead", |c, v| c.task_overhead = v),
        ];
        for (knob, set) in cases {
            for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                let mut cfg = ClusterConfig::default();
                set(&mut cfg, bad);
                assert_eq!(
                    cfg.validate(),
                    Err(SimError::NonFiniteKnob { knob }),
                    "{knob} = {bad}"
                );
            }
        }
    }

    /// Defense in depth for direct callers: even with a NaN or infinite
    /// task cost (which validation now keeps out of jobs), `lpt` schedules
    /// deterministically via `total_cmp` instead of panicking.
    #[test]
    fn lpt_tolerates_non_finite_costs_without_panicking() {
        let tasks = vec![
            TaskCost(f64::NAN),
            TaskCost(1.0),
            TaskCost(f64::INFINITY),
            TaskCost(2.0),
        ];
        let s = Schedule::lpt(&tasks, 2);
        assert_eq!(s.worker_finish.len(), 2);
        // `total_cmp` is a total order, so even garbage-in schedules are
        // bit-for-bit reproducible across calls (NaN propagates into the
        // loads, hence the bit comparison rather than `==`).
        let a = Schedule::lpt(&tasks, 2);
        let bits = |sched: &Schedule| -> Vec<u64> {
            sched.worker_finish.iter().map(|f| f.to_bits()).collect()
        };
        assert_eq!(bits(&s), bits(&a));
    }

    #[test]
    fn shuffle_mode_names_round_trip() {
        for mode in ShuffleMode::ALL {
            assert_eq!(mode.name().parse::<ShuffleMode>(), Ok(mode));
        }
        // The error names every accepted mode, straight from `ALL`.
        let err = "mystery".parse::<ShuffleMode>().unwrap_err();
        for mode in ShuffleMode::ALL {
            assert!(err.contains(mode.name()), "{err}");
        }
    }

    #[test]
    fn finalize_mode_names_round_trip() {
        for mode in FinalizeMode::ALL {
            assert_eq!(mode.name().parse::<FinalizeMode>(), Ok(mode));
        }
        assert_eq!(FinalizeMode::default(), FinalizeMode::Static);
        let err = "mystery".parse::<FinalizeMode>().unwrap_err();
        for mode in FinalizeMode::ALL {
            assert!(err.contains(mode.name()), "{err}");
        }
    }

    #[test]
    fn task_costs_scale_with_bytes() {
        let cfg = ClusterConfig {
            task_overhead: 1.0,
            map_rate: 100.0,
            reduce_rate: 50.0,
            network_bandwidth: 10.0,
            ..Default::default()
        };
        assert!((cfg.map_task_seconds(200) - 3.0).abs() < 1e-12);
        assert!((cfg.reduce_task_seconds(200) - 5.0).abs() < 1e-12);
        assert!((cfg.shuffle_seconds(200) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn lpt_balances_equal_tasks() {
        let tasks = vec![TaskCost(1.0); 8];
        let s = Schedule::lpt(&tasks, 4);
        assert!((s.makespan - 2.0).abs() < 1e-12);
        assert!((s.total_work - 8.0).abs() < 1e-12);
        assert!(s.worker_finish.iter().all(|&f| (f - 2.0).abs() < 1e-12));
    }

    #[test]
    fn lpt_handles_skewed_tasks() {
        // One long task dominates: makespan equals its duration.
        let tasks = vec![TaskCost(10.0), TaskCost(1.0), TaskCost(1.0), TaskCost(1.0)];
        let s = Schedule::lpt(&tasks, 4);
        assert!((s.makespan - 10.0).abs() < 1e-12);
    }

    #[test]
    fn lpt_single_worker_is_serial() {
        let tasks = vec![TaskCost(2.0), TaskCost(3.0), TaskCost(5.0)];
        let s = Schedule::lpt(&tasks, 1);
        assert!((s.makespan - 10.0).abs() < 1e-12);
        assert!((s.makespan - s.total_work).abs() < 1e-12);
    }

    #[test]
    fn lpt_no_tasks_is_zero() {
        let s = Schedule::lpt(&[], 4);
        assert_eq!(s.makespan, 0.0);
        assert_eq!(s.total_work, 0.0);
    }

    #[test]
    fn lpt_makespan_at_least_average_and_max() {
        let tasks: Vec<TaskCost> = (1..=13).map(|i| TaskCost(i as f64)).collect();
        let workers = 3;
        let s = Schedule::lpt(&tasks, workers);
        let total: f64 = (1..=13).map(|i| i as f64).sum();
        assert!(s.makespan >= total / workers as f64 - 1e-9);
        assert!(s.makespan >= 13.0 - 1e-9);
        // And within the LPT guarantee of 4/3 OPT + ... vs the trivial LB.
        let lb = (total / workers as f64).max(13.0);
        assert!(s.makespan <= lb * 4.0 / 3.0 + 1e-9);
    }
}
