//! Out-of-core run spilling for the pipelined shuffle.
//!
//! When [`ClusterConfig::memory_budget`](crate::ClusterConfig::memory_budget)
//! is set, a consumer group whose buffered run data exceeds the budget
//! **seals** its largest sequence-ordered run and writes it to a temp file
//! through this module; finalize later streams the run back record by
//! record through the same k-way merge that handles in-memory runs. The
//! run representation (records sorted by producing-task `seq`) is already
//! an on-disk-ready unit: spilling changes *where* a run lives, never what
//! it contains, which is what keeps `JobOutput` bit-identical across
//! budget settings.
//!
//! **File format.** Length-prefixed, little-endian throughout:
//!
//! ```text
//!   u64 record_count
//!   repeat record_count times:
//!     u32 record_len            // byte length of the payload below
//!     u64 seq                   // producing map task index
//!     <key bytes>  (SpillCodec)
//!     <value bytes> (SpillCodec)
//! ```
//!
//! The per-record length prefix lets the reader buffer exactly one record
//! at a time — the external merge holds one head record per run, not the
//! run itself.
//!
//! **Lifecycle.** A [`SpillFile`] deletes its temp file on drop; runs are
//! shared as [`SpilledRun`]s holding an `Arc<SpillFile>`, so the stealing
//! finalize and speculative re-execution clone a pointer, every reader
//! opens its own file handle, and the file disappears exactly when the
//! last holder drops it — on success, on error, and during a user-panic
//! unwind alike (the engine's threads are scoped, so locals always drop).

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Serialization contract for spillable keys and values.
///
/// Every [`Mapper::Key`](crate::Mapper::Key) and
/// [`Mapper::Value`](crate::Mapper::Value) must encode itself into the
/// spill file format and decode itself back, byte-identically — the
/// out-of-core merge replays spilled records through the same reduce path
/// as in-memory ones, so a lossy codec would silently corrupt outputs.
/// Implementations mirror the [`ByteSized`](crate::ByteSized) coverage:
/// fixed-width little-endian integers, length-prefixed strings and byte
/// slices, and structural impls for tuples, `Vec`, `Option`, and `Box`.
///
/// `encode` appends to `buf`; `decode` consumes from the front of `bytes`
/// (advancing the slice) and returns `None` on truncated or malformed
/// input — the engine surfaces that as
/// [`SimError::SpillIo`](crate::SimError::SpillIo) rather than panicking.
pub trait SpillCodec: Sized {
    /// Appends this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes one value from the front of `bytes`, advancing it past the
    /// consumed bytes. `None` means truncated or malformed input.
    fn decode(bytes: &mut &[u8]) -> Option<Self>;
}

/// Splits `n` bytes off the front of `bytes`, or `None` if short.
fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if bytes.len() < n {
        return None;
    }
    let (head, rest) = bytes.split_at(n);
    *bytes = rest;
    Some(head)
}

macro_rules! int_codec {
    ($($ty:ty),*) => {$(
        impl SpillCodec for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(bytes: &mut &[u8]) -> Option<Self> {
                let raw = take(bytes, std::mem::size_of::<$ty>())?;
                Some(<$ty>::from_le_bytes(raw.try_into().ok()?))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i32, i64);

impl SpillCodec for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        // Bit pattern, not value: NaN payloads and signed zeros survive
        // the roundtrip, so a checkpointed output is bit-identical to the
        // freshly computed one.
        self.to_bits().encode(buf);
    }
    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        Some(f64::from_bits(u64::decode(bytes)?))
    }
}

impl SpillCodec for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        // Fixed 8-byte encoding regardless of platform width.
        (*self as u64).encode(buf);
    }
    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        usize::try_from(u64::decode(bytes)?).ok()
    }
}

impl SpillCodec for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_bytes: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl SpillCodec for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        match u8::decode(bytes)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

/// Encodes a `u32` length prefix, rejecting lengths that overflow it.
fn encode_len(len: usize, buf: &mut Vec<u8>) {
    u32::try_from(len)
        .expect("spilled element count exceeds u32::MAX")
        .encode(buf);
}

impl SpillCodec for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_len(self.len(), buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(bytes)? as usize;
        let raw = take(bytes, len)?;
        String::from_utf8(raw.to_vec()).ok()
    }
}

impl SpillCodec for Arc<[u8]> {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_len(self.len(), buf);
        buf.extend_from_slice(self);
    }
    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(bytes)? as usize;
        Some(Arc::from(take(bytes, len)?))
    }
}

impl<T: SpillCodec> SpillCodec for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_len(self.len(), buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(bytes)? as usize;
        // Cap preallocation: `len` is attacker/corruption-controlled.
        let mut items = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            items.push(T::decode(bytes)?);
        }
        Some(items)
    }
}

impl<T: SpillCodec> SpillCodec for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(value) => {
                buf.push(1);
                value.encode(buf);
            }
        }
    }
    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        match u8::decode(bytes)? {
            0 => Some(None),
            1 => Some(Some(T::decode(bytes)?)),
            _ => None,
        }
    }
}

impl<T: SpillCodec> SpillCodec for Box<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }
    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        Some(Box::new(T::decode(bytes)?))
    }
}

impl<A: SpillCodec, B: SpillCodec> SpillCodec for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        Some((A::decode(bytes)?, B::decode(bytes)?))
    }
}

impl<A: SpillCodec, B: SpillCodec, C: SpillCodec> SpillCodec for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        Some((A::decode(bytes)?, B::decode(bytes)?, C::decode(bytes)?))
    }
}

/// Owns one spill temp file and deletes it on drop.
///
/// Shared behind an `Arc` by [`SpilledRun`]: however many finalize copies
/// (primary, stolen, speculative) hold the run, the file is removed
/// exactly once, when the last holder drops — including mid-unwind, since
/// the engine's scoped threads drop their locals before the panic
/// propagates.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    /// Shared tally of failed deletes, sampled into
    /// [`PipelineMetrics::spill_delete_errors`](crate::PipelineMetrics::spill_delete_errors)
    /// when the owning job wires one in (`None` for standalone holders).
    delete_errors: Option<Arc<AtomicU64>>,
}

impl SpillFile {
    /// Takes ownership of `path`, deleting it on drop. Failed deletes are
    /// counted into `delete_errors` when provided.
    pub(crate) fn new(path: PathBuf, delete_errors: Option<Arc<AtomicU64>>) -> Self {
        SpillFile {
            path,
            delete_errors,
        }
    }

    /// The temp file's location (diagnostic; travels in
    /// [`SimError::SpillIo`](crate::SimError::SpillIo)).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        // Best effort: a vanished temp dir must not turn cleanup into a
        // second failure. But a *leak* must be observable — a delete that
        // fails for any reason other than the file already being gone is
        // tallied for PipelineMetrics::spill_delete_errors.
        if let Err(error) = std::fs::remove_file(&self.path) {
            if error.kind() != std::io::ErrorKind::NotFound {
                if let Some(counter) = &self.delete_errors {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// One sealed, spilled run: a handle to its temp file plus the accounting
/// the engine tracked while the run was resident. Cloning is a pointer
/// bump — the stealing finalize and speculation share spilled state this
/// way — and every reader opens its own handle, so concurrent finalize
/// copies never contend on a shared cursor.
#[derive(Debug, Clone)]
pub struct SpilledRun {
    file: Arc<SpillFile>,
    /// Records in the run.
    pub records: u64,
    /// `ByteSized` bytes the run occupied while buffered (key + value per
    /// record) — the unit [`crate::ClusterConfig::memory_budget`] is
    /// stated in, *not* the physical file size.
    pub bytes: u64,
}

impl SpilledRun {
    /// The backing temp file's location.
    pub fn path(&self) -> &Path {
        self.file.path()
    }
}

/// Monotonic discriminator so concurrent groups (and concurrent tests in
/// one process) never collide on a temp file name.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Resolves the directory spill files are created in: the configured
/// override, or the OS temp dir.
pub(crate) fn resolve_dir(configured: Option<&Path>) -> PathBuf {
    configured.map_or_else(std::env::temp_dir, Path::to_path_buf)
}

/// A spill write or read failure, pre-partition: the engine attaches the
/// reducer partition when lifting this into
/// [`SimError::SpillIo`](crate::SimError::SpillIo).
#[derive(Debug)]
pub(crate) struct SpillError {
    pub path: String,
    pub source: String,
}

/// Seals `run` into a fresh temp file under `dir`.
///
/// On any I/O error the partially written file is already owned by the
/// returned-to-be [`SpillFile`] guard, so it is deleted before the error
/// propagates; the caller keeps the in-memory run it still holds.
pub(crate) fn write_run<K: SpillCodec, V: SpillCodec>(
    dir: &Path,
    run: &[(usize, K, V)],
    bytes: u64,
    delete_errors: Option<Arc<AtomicU64>>,
) -> Result<SpilledRun, SpillError> {
    let discriminator = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!(
        "mrassign-spill-{}-{discriminator}.run",
        std::process::id()
    ));
    let guard = SpillFile::new(path, delete_errors);
    let fail = |source: std::io::Error| SpillError {
        path: guard.path().display().to_string(),
        source: source.to_string(),
    };
    let write = || -> std::io::Result<()> {
        let mut writer = BufWriter::new(File::create(guard.path())?);
        writer.write_all(&(run.len() as u64).to_le_bytes())?;
        let mut record = Vec::new();
        for (seq, key, value) in run {
            record.clear();
            (*seq as u64).encode(&mut record);
            key.encode(&mut record);
            value.encode(&mut record);
            let len = u32::try_from(record.len()).map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "spill record exceeds the u32 length prefix",
                )
            })?;
            writer.write_all(&len.to_le_bytes())?;
            writer.write_all(&record)?;
        }
        writer.flush()
    };
    write().map_err(fail)?;
    Ok(SpilledRun {
        file: Arc::new(guard),
        records: run.len() as u64,
        bytes,
    })
}

/// Streams one spilled run back in write order, one length-prefixed
/// record per [`SpillReader::next_record`] call — the external merge
/// keeps exactly one head record per run resident.
pub(crate) struct SpillReader<K, V> {
    reader: BufReader<File>,
    remaining: u64,
    /// Keeps the temp file alive for the duration of the read even if
    /// every other holder of the run drops meanwhile.
    file: Arc<SpillFile>,
    record: Vec<u8>,
    _types: PhantomData<fn() -> (K, V)>,
}

impl<K: SpillCodec, V: SpillCodec> SpillReader<K, V> {
    pub(crate) fn open(run: &SpilledRun) -> Result<Self, SpillError> {
        let fail = |source: String| SpillError {
            path: run.path().display().to_string(),
            source,
        };
        let file = File::open(run.path()).map_err(|e| fail(e.to_string()))?;
        let mut reader = BufReader::new(file);
        let mut header = [0u8; 8];
        reader
            .read_exact(&mut header)
            .map_err(|e| fail(format!("reading record count: {e}")))?;
        let remaining = u64::from_le_bytes(header);
        if remaining != run.records {
            return Err(fail(format!(
                "header says {remaining} records but the run was sealed with {}",
                run.records
            )));
        }
        Ok(SpillReader {
            reader,
            remaining,
            file: Arc::clone(&run.file),
            record: Vec::new(),
            _types: PhantomData,
        })
    }

    /// Reads the next `(seq, key, value)` record, or `None` at end of run.
    pub(crate) fn next_record(&mut self) -> Option<Result<(usize, K, V), SpillError>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.read_one())
    }

    fn read_one(&mut self) -> Result<(usize, K, V), SpillError> {
        let fail = |source: String| SpillError {
            path: self.file.path().display().to_string(),
            source,
        };
        let mut len = [0u8; 4];
        self.reader
            .read_exact(&mut len)
            .map_err(|e| fail(format!("reading record length: {e}")))?;
        let len = u32::from_le_bytes(len) as usize;
        self.record.resize(len, 0);
        self.reader
            .read_exact(&mut self.record)
            .map_err(|e| fail(format!("reading record body: {e}")))?;
        let mut bytes = self.record.as_slice();
        let decoded = (|| {
            let seq = usize::decode(&mut bytes)?;
            let key = K::decode(&mut bytes)?;
            let value = V::decode(&mut bytes)?;
            bytes.is_empty().then_some((seq, key, value))
        })();
        decoded.ok_or_else(|| SpillError {
            path: self.file.path().display().to_string(),
            source: "malformed spill record (truncated or trailing bytes)".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: SpillCodec + PartialEq + std::fmt::Debug>(value: T) {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(T::decode(&mut slice), Some(value));
        assert!(slice.is_empty(), "decode must consume the full encoding");
    }

    #[test]
    fn codecs_roundtrip_every_covered_type() {
        roundtrip(0u8);
        roundtrip(513u16);
        roundtrip(70_000u32);
        roundtrip(u64::MAX);
        roundtrip(12usize);
        roundtrip(-5i32);
        roundtrip(-5_000_000_000i64);
        roundtrip(());
        roundtrip(true);
        roundtrip(String::from("héllo wörld"));
        roundtrip(Arc::<[u8]>::from(&b"abc\0def"[..]));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<String>::new());
        roundtrip(Some(7u32));
        roundtrip(None::<String>);
        roundtrip(Box::new((1u8, String::from("x"))));
        roundtrip((1u64, String::from("k"), vec![false, true]));
    }

    #[test]
    fn decode_rejects_truncation_and_bad_tags() {
        let mut buf = Vec::new();
        String::from("hello").encode(&mut buf);
        let mut short = &buf[..buf.len() - 1];
        assert_eq!(String::decode(&mut short), None);
        let mut bad_bool = &[7u8][..];
        assert_eq!(bool::decode(&mut bad_bool), None);
        let mut bad_opt = &[9u8][..];
        assert_eq!(Option::<u8>::decode(&mut bad_opt), None);
        let mut empty = &[][..];
        assert_eq!(u64::decode(&mut empty), None);
    }

    fn unique_temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mrassign-spill-test-{tag}-{}-{}",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create test temp dir");
        dir
    }

    #[test]
    fn write_then_stream_roundtrips_and_deletes_on_drop() {
        let dir = unique_temp_dir("roundtrip");
        let run: Vec<(usize, u64, String)> = (0..100)
            .map(|i| (i, i as u64 * 3, format!("value-{i}")))
            .collect();
        let spilled = write_run(&dir, &run, 4_096, None).expect("spill writes");
        assert_eq!(spilled.records, 100);
        assert_eq!(spilled.bytes, 4_096);
        assert!(spilled.path().exists());

        let mut reader: SpillReader<u64, String> = SpillReader::open(&spilled).expect("opens");
        let mut streamed = Vec::new();
        while let Some(record) = reader.next_record() {
            streamed.push(record.expect("clean read"));
        }
        assert_eq!(streamed, run);

        // Two concurrent readers see independent cursors.
        let mut a: SpillReader<u64, String> = SpillReader::open(&spilled).unwrap();
        let mut b: SpillReader<u64, String> = SpillReader::open(&spilled).unwrap();
        assert_eq!(a.next_record().unwrap().unwrap(), run[0]);
        assert_eq!(b.next_record().unwrap().unwrap(), run[0]);

        let path = spilled.path().to_path_buf();
        drop(reader);
        drop(spilled);
        // Readers hold the file alive until they finish.
        assert!(path.exists(), "live readers keep the temp file");
        drop(a);
        drop(b);
        assert!(!path.exists(), "last holder deletes the temp file");
        std::fs::remove_dir(&dir).expect("test dir is empty again");
    }

    /// Satellite: an unwritable spill directory surfaces as an `Err` (the
    /// engine lifts it into `SimError::SpillIo`), never a panic, and
    /// leaves no partial file behind.
    #[test]
    fn unwritable_directory_fails_cleanly_without_litter() {
        let dir = unique_temp_dir("missing").join("does-not-exist");
        let run: Vec<(usize, u64, u64)> = vec![(0, 1, 2)];
        let err = write_run(&dir, &run, 16, None).expect_err("missing dir cannot be written");
        assert!(err.path.contains("mrassign-spill-"), "{}", err.path);
        assert!(!err.source.is_empty());
        assert!(!dir.exists(), "no partial file appears");
    }

    /// Satellite: `SpillFile::drop` used to swallow delete errors silently.
    /// A delete that fails (other than file-already-gone) must bump the
    /// shared counter; a clean delete, or a file someone else already
    /// removed, must not.
    #[test]
    fn drop_counts_failed_deletes_but_not_vanished_files() {
        let dir = unique_temp_dir("delete-errors");
        let counter = Arc::new(AtomicU64::new(0));

        // Clean delete: no error counted.
        let run: Vec<(usize, u64, u64)> = vec![(0, 1, 2)];
        let spilled = write_run(&dir, &run, 16, Some(Arc::clone(&counter))).expect("spill writes");
        drop(spilled);
        assert_eq!(counter.load(Ordering::Relaxed), 0);

        // Already-gone file: NotFound is not a leak, so still no error.
        let spilled = write_run(&dir, &run, 16, Some(Arc::clone(&counter))).expect("spill writes");
        std::fs::remove_file(spilled.path()).expect("steal the file out from under the guard");
        drop(spilled);
        assert_eq!(counter.load(Ordering::Relaxed), 0);

        // Genuine failure: the path is a non-empty directory, which
        // remove_file cannot delete on any platform.
        let blocked = dir.join("blocked.run");
        std::fs::create_dir(&blocked).expect("create blocking dir");
        std::fs::write(blocked.join("occupant"), b"x").expect("occupy it");
        drop(SpillFile::new(blocked.clone(), Some(Arc::clone(&counter))));
        assert_eq!(
            counter.load(Ordering::Relaxed),
            1,
            "failed delete is tallied"
        );

        std::fs::remove_file(blocked.join("occupant")).unwrap();
        std::fs::remove_dir(&blocked).unwrap();
        std::fs::remove_dir(&dir).expect("test dir is empty again");
    }

    #[test]
    fn corrupt_header_count_is_a_read_error() {
        let dir = unique_temp_dir("corrupt");
        let run: Vec<(usize, u64, u64)> = (0..4).map(|i| (i, i as u64, 0)).collect();
        let mut spilled = write_run(&dir, &run, 64, None).expect("spill writes");
        spilled.records += 1; // sealed count no longer matches the header
        let Err(err) = SpillReader::<u64, u64>::open(&spilled) else {
            panic!("mismatch must be detected");
        };
        assert!(err.source.contains("sealed with"), "{}", err.source);
        drop(spilled);
        std::fs::remove_dir(&dir).expect("test dir is empty again");
    }
}
