//! Property-based tests for the simulated engine: for arbitrary inputs and
//! cluster shapes, accounting identities hold, execution is deterministic
//! across thread counts, and the scheduler respects its analytical bounds.

use mrassign_simmr::{
    BroadcastRouter, CapacityPolicy, ClusterConfig, DlqEntry, DlqMode, Emitter, FaultPlan,
    FaultStage, FinalizeMode, HashRouter, Job, Mapper, Reducer, Router, Schedule, ShuffleMode,
    SimError, TaskCost,
};
use proptest::prelude::*;

/// Identity-style mapper over (key, payload) records.
struct KvMapper;

impl Mapper for KvMapper {
    type In = (u64, String);
    type Key = u64;
    type Value = String;
    fn map(&self, input: &(u64, String), emit: &mut Emitter<u64, String>) {
        emit.emit(input.0, input.1.clone());
    }
}

/// Counts values and sums payload bytes per key.
struct CountBytes;

impl Reducer for CountBytes {
    type Key = u64;
    type Value = String;
    type Out = (u64, u64, u64);
    fn reduce(&self, key: &u64, values: &[String], out: &mut Vec<(u64, u64, u64)>) {
        out.push((
            *key,
            values.len() as u64,
            values.iter().map(|v| v.len() as u64).sum(),
        ));
    }
}

fn records() -> impl Strategy<Value = Vec<(u64, String)>> {
    proptest::collection::vec((0u64..40, "[a-z]{0,12}"), 0..80)
}

/// The partition [`HashRouter`] sends `key` to, recomputed outside the
/// engine so the fault properties can derive expected DLQ contents and
/// surviving outputs independently of the code under test.
fn hash_partition(key: u64, n_reducers: usize) -> usize {
    let mut targets = Vec::new();
    HashRouter::new().route(&key, n_reducers, &mut targets);
    targets[0]
}

/// Reducer partitions that receive at least one record from `inputs`
/// under [`HashRouter`] — the partitions whose reduce task actually runs
/// (and can therefore be poisoned).
fn nonempty_partitions(inputs: &[(u64, String)], n_reducers: usize) -> Vec<usize> {
    let mut hit = vec![false; n_reducers];
    for (key, _) in inputs {
        hit[hash_partition(*key, n_reducers)] = true;
    }
    (0..n_reducers).filter(|&p| hit[p]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_routed_jobs_preserve_every_record(inputs in records()) {
        let job = Job::new(KvMapper, CountBytes, HashRouter::new(), 5, ClusterConfig::default());
        let result = job.run(&inputs).unwrap();
        // Every record is shuffled exactly once and reduced exactly once.
        prop_assert_eq!(result.metrics.records_emitted, inputs.len() as u64);
        prop_assert_eq!(result.metrics.records_shuffled, inputs.len() as u64);
        let reduced: u64 = result.outputs.iter().map(|&(_, n, _)| n).sum();
        prop_assert_eq!(reduced, inputs.len() as u64);
        // Byte identity: shuffled bytes = keys (8 each) + payload bytes.
        let payload: u64 = inputs.iter().map(|(_, p)| p.len() as u64).sum();
        prop_assert_eq!(result.metrics.bytes_shuffled, payload + 8 * inputs.len() as u64);
        // Value-byte identity across partitions.
        let loads: u64 = result.metrics.reducer_value_bytes.iter().sum();
        prop_assert_eq!(loads, payload);
    }

    #[test]
    fn thread_count_never_changes_results(inputs in records()) {
        let run = |threads| {
            Job::new(KvMapper, CountBytes, HashRouter::new(), 5, ClusterConfig {
                map_threads: threads,
                ..ClusterConfig::default()
            })
            .run(&inputs)
            .unwrap()
        };
        let a = run(1);
        let b = run(3);
        let c = run(8);
        prop_assert_eq!(&a.outputs, &b.outputs);
        prop_assert_eq!(&a.outputs, &c.outputs);
        prop_assert_eq!(&a.metrics, &b.metrics);
        prop_assert_eq!(&b.metrics, &c.metrics);
    }

    #[test]
    fn shuffle_mode_never_changes_results(inputs in records(), n_red in 1usize..90) {
        // Reducer counts straddle the streaming block size, so single-block
        // and multi-block sweeps are both exercised.
        let run = |shuffle| {
            Job::new(KvMapper, CountBytes, HashRouter::new(), n_red, ClusterConfig {
                shuffle,
                ..ClusterConfig::default()
            })
            .run(&inputs)
            .unwrap()
        };
        let materialized = run(ShuffleMode::Materialized);
        let streaming = run(ShuffleMode::Streaming);
        prop_assert_eq!(&materialized.outputs, &streaming.outputs);
        prop_assert_eq!(&materialized.metrics, &streaming.metrics);
    }

    /// Pipeline internals under random shapes: for arbitrary inputs,
    /// reducer counts, mapper thread counts, and `pipeline_depth` ∈ 1..=8
    /// the engine (a) terminates — depth 1 is maximal back-pressure, so
    /// this is the deadlock canary; (b) never reorders a reducer's blocks
    /// (the concatenating reducer output is order-sensitive and must match
    /// the materialized pass byte for byte); and (c) respects the
    /// back-pressure bound `peak_inflight_blocks ≤ pipeline_depth ×
    /// consumer_groups`.
    #[test]
    fn pipelined_is_deadlock_free_order_preserving_and_bounded(
        inputs in records(),
        n_red in 1usize..90,
        threads in 1usize..5,
        depth in 1usize..9,
    ) {
        struct Concat;
        impl Reducer for Concat {
            type Key = u64;
            type Value = String;
            type Out = (u64, String);
            fn reduce(&self, key: &u64, values: &[String], out: &mut Vec<(u64, String)>) {
                out.push((*key, values.join("|")));
            }
        }
        let run = |shuffle, map_threads, pipeline_depth| {
            Job::new(KvMapper, Concat, HashRouter::new(), n_red, ClusterConfig {
                shuffle,
                map_threads,
                pipeline_depth,
                ..ClusterConfig::default()
            })
            .run(&inputs)
            .unwrap()
        };
        let reference = run(ShuffleMode::Materialized, 1, depth);
        let pipelined = run(ShuffleMode::Pipelined, threads, depth);
        prop_assert_eq!(&reference.outputs, &pipelined.outputs);
        prop_assert_eq!(
            reference.metrics.deterministic(),
            pipelined.metrics.deterministic()
        );
        let p = &pipelined.metrics.pipeline;
        prop_assert!(p.consumer_groups >= 1);
        prop_assert!(
            p.peak_inflight_blocks <= depth as u64 * p.consumer_groups,
            "peak {} > depth {} × groups {}",
            p.peak_inflight_blocks, depth, p.consumer_groups
        );
        // The default finalize mode is static: no partition may ever be
        // reported as stolen, and every group reports a finalize span.
        prop_assert_eq!(p.stolen_partitions, 0);
        prop_assert_eq!(p.finalize_group_seconds.len() as u64, p.consumer_groups);
        prop_assert!(p.finalize_imbalance >= 1.0);
        if inputs.is_empty() {
            prop_assert_eq!(p.blocks_sent, 0);
        } else {
            prop_assert!(p.blocks_sent >= 1);
            prop_assert!(p.peak_inflight_blocks >= 1);
        }
    }

    /// Hot-reducer skew (the work-stealing finalize's reason to exist):
    /// rewrite ~80% of the keys onto one heavy hitter so one partition
    /// receives ~all bytes, then require (a) both finalize modes match
    /// the materialized pass byte for byte with an order-sensitive
    /// reducer, and (b) `stolen_partitions = 0` whenever
    /// `finalize_mode = static`.
    #[test]
    fn hot_reducer_finalize_modes_agree_and_static_never_steals(
        inputs in records(),
        n_red in 2usize..40,
        threads in 1usize..5,
        depth in 1usize..5,
    ) {
        struct Concat;
        impl Reducer for Concat {
            type Key = u64;
            type Value = String;
            type Out = (u64, String);
            fn reduce(&self, key: &u64, values: &[String], out: &mut Vec<(u64, String)>) {
                out.push((*key, values.join("|")));
            }
        }
        let skewed: Vec<(u64, String)> = inputs
            .into_iter()
            .map(|(k, payload)| (if k % 5 != 0 { 0 } else { k }, payload))
            .collect();
        let run = |shuffle, finalize_mode| {
            Job::new(KvMapper, Concat, HashRouter::new(), n_red, ClusterConfig {
                shuffle,
                map_threads: threads,
                pipeline_depth: depth,
                finalize_mode,
                ..ClusterConfig::default()
            })
            .run(&skewed)
            .unwrap()
        };
        let reference = run(ShuffleMode::Materialized, FinalizeMode::Static);
        for finalize in FinalizeMode::ALL {
            let pipelined = run(ShuffleMode::Pipelined, finalize);
            prop_assert_eq!(&reference.outputs, &pipelined.outputs);
            prop_assert_eq!(
                reference.metrics.deterministic(),
                pipelined.metrics.deterministic()
            );
            let p = &pipelined.metrics.pipeline;
            if finalize == FinalizeMode::Static {
                prop_assert_eq!(p.stolen_partitions, 0, "static finalize must never steal");
            }
            prop_assert!(p.finalize_imbalance >= 1.0);
        }
    }

    /// Streaming block/batch knobs are behavior-free: any valid setting
    /// produces the same `JobOutput` (the knobs only move the
    /// memory/recomputation tradeoff).
    #[test]
    fn streaming_knobs_never_change_results(
        inputs in records(),
        n_red in 1usize..90,
        block in 1usize..100,
        batch in 1usize..40,
    ) {
        let run = |shuffle, streaming_reducer_block, streaming_map_batch| {
            Job::new(KvMapper, CountBytes, HashRouter::new(), n_red, ClusterConfig {
                shuffle,
                streaming_reducer_block,
                streaming_map_batch,
                ..ClusterConfig::default()
            })
            .run(&inputs)
            .unwrap()
        };
        let materialized = run(ShuffleMode::Materialized, 64, 256);
        let streaming = run(ShuffleMode::Streaming, block, batch);
        prop_assert_eq!(&materialized.outputs, &streaming.outputs);
        prop_assert_eq!(&materialized.metrics, &streaming.metrics);
    }

    #[test]
    fn broadcast_multiplies_exactly_by_reducers(inputs in records(), n_red in 1usize..7) {
        let job = Job::new(KvMapper, CountBytes, BroadcastRouter, n_red, ClusterConfig::default());
        let result = job.run(&inputs).unwrap();
        prop_assert_eq!(
            result.metrics.records_shuffled,
            inputs.len() as u64 * n_red as u64
        );
        if !inputs.is_empty() {
            prop_assert!((result.metrics.replication_rate() - n_red as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn recorded_violations_match_loads(inputs in records(), q in 0u64..200) {
        let job = Job::new(KvMapper, CountBytes, HashRouter::new(), 4, ClusterConfig::default())
            .capacity(CapacityPolicy::Record(q));
        let result = job.run(&inputs).unwrap();
        let expected: Vec<usize> = result
            .metrics
            .reducer_value_bytes
            .iter()
            .enumerate()
            .filter(|&(_, &load)| load > q)
            .map(|(r, _)| r)
            .collect();
        prop_assert_eq!(result.metrics.capacity_violations, expected);
    }

    #[test]
    fn enforce_agrees_with_record(inputs in records(), q in 0u64..200) {
        let record = Job::new(KvMapper, CountBytes, HashRouter::new(), 4, ClusterConfig::default())
            .capacity(CapacityPolicy::Record(q))
            .run(&inputs)
            .unwrap();
        let enforce = Job::new(KvMapper, CountBytes, HashRouter::new(), 4, ClusterConfig::default())
            .capacity(CapacityPolicy::Enforce(q))
            .run(&inputs);
        prop_assert_eq!(
            enforce.is_err(),
            !record.metrics.capacity_violations.is_empty()
        );
    }

    #[test]
    fn total_time_between_ideal_and_serial(inputs in records(), workers in 1usize..9) {
        let job = Job::new(KvMapper, CountBytes, HashRouter::new(), 4, ClusterConfig {
            workers,
            ..ClusterConfig::default()
        });
        let m = job.run(&inputs).unwrap().metrics;
        prop_assert!(m.total_seconds() <= m.serial_seconds + 1e-9);
        prop_assert!(m.serial_seconds <= m.total_seconds() * workers as f64 + 1e-9);
    }

    #[test]
    fn lpt_respects_analytic_bounds(durations in proptest::collection::vec(0.0f64..10.0, 0..40),
                                    workers in 1usize..8) {
        let tasks: Vec<TaskCost> = durations.iter().map(|&d| TaskCost(d)).collect();
        let s = Schedule::lpt(&tasks, workers);
        let total: f64 = durations.iter().sum();
        let longest = durations.iter().cloned().fold(0.0, f64::max);
        let lower = (total / workers as f64).max(longest);
        prop_assert!(s.makespan >= lower - 1e-9);
        // LPT guarantee: makespan ≤ (4/3 − 1/3w)·OPT ≤ 4/3·(LB + longest).
        prop_assert!(s.makespan <= lower * 4.0 / 3.0 + longest + 1e-9);
        prop_assert!((s.total_work - total).abs() < 1e-6);
    }

    /// Random transient-fault schedules that stay under the retry budget
    /// are invisible: the engine never deadlocks (pipeline depth 1 is the
    /// maximal back-pressure canary), never reorders (the concatenating
    /// comparison in deterministic metrics + outputs), and never drops a
    /// record — every mode matches the fault-free materialized reference
    /// bit for bit, with the faults showing only in the masked counters.
    /// Rates are capped at 0.3 against a budget of 12, so the chance any
    /// task exhausts the budget is ≤ 0.3¹³ ≈ 1.6·10⁻⁷ per task.
    #[test]
    fn bounded_fault_schedules_never_deadlock_or_reorder(
        inputs in records(),
        seed in any::<u64>(),
        map_rate in 0.0f64..0.3,
        reduce_rate in 0.0f64..0.3,
        threads in 1usize..5,
    ) {
        let run = |shuffle, finalize_mode, plan: Option<FaultPlan>| {
            Job::new(KvMapper, CountBytes, HashRouter::new(), 5, ClusterConfig {
                shuffle,
                map_threads: threads,
                pipeline_depth: 1,
                finalize_mode,
                retry_budget: 12,
                fault_plan: plan,
                ..ClusterConfig::default()
            })
            .run(&inputs)
            .unwrap()
        };
        let plan = FaultPlan {
            map_rate,
            reduce_rate,
            ..FaultPlan::seeded(seed, 0.0)
        };
        let reference = run(ShuffleMode::Materialized, FinalizeMode::Static, None);
        for shuffle in [ShuffleMode::Materialized, ShuffleMode::Streaming] {
            let faulted = run(shuffle, FinalizeMode::Static, Some(plan.clone()));
            prop_assert_eq!(&reference.outputs, &faulted.outputs);
            prop_assert_eq!(reference.metrics.deterministic(), faulted.metrics.deterministic());
            prop_assert!(faulted.dlq.is_empty());
        }
        for finalize in FinalizeMode::ALL {
            let faulted = run(ShuffleMode::Pipelined, finalize, Some(plan.clone()));
            prop_assert_eq!(&reference.outputs, &faulted.outputs);
            prop_assert_eq!(reference.metrics.deterministic(), faulted.metrics.deterministic());
            prop_assert!(faulted.dlq.is_empty());
        }
    }

    /// Poison schedules that exceed the budget surface a *named*
    /// [`SimError::RetriesExhausted`] under [`DlqMode::Fail`], following
    /// the engine's cross-mode error precedence: the lowest poisoned map
    /// task wins; otherwise the lowest poisoned partition that actually
    /// receives records. Out-of-range poison entries and empty partitions
    /// never fire. Every mode reports the identical error.
    #[test]
    fn over_budget_poison_names_the_task_in_fail_mode(
        inputs in records(),
        raw_poison_map in proptest::collection::vec(0usize..90, 0..4),
        raw_poison_reduce in proptest::collection::vec(0usize..5, 0..3),
        budget in 0u32..4,
    ) {
        let mut poison_map = raw_poison_map;
        poison_map.sort_unstable();
        poison_map.dedup();
        let mut poison_reduce = raw_poison_reduce;
        poison_reduce.sort_unstable();
        poison_reduce.dedup();
        let plan = FaultPlan {
            poison_map_tasks: poison_map.clone(),
            poison_reduce_tasks: poison_reduce.clone(),
            ..FaultPlan::default()
        };
        let run = |shuffle, finalize_mode| {
            Job::new(KvMapper, CountBytes, HashRouter::new(), 5, ClusterConfig {
                shuffle,
                map_threads: 2,
                pipeline_depth: 1,
                finalize_mode,
                retry_budget: budget,
                fault_plan: Some(plan.clone()),
                ..ClusterConfig::default()
            })
            .run(&inputs)
        };
        let first_map = poison_map.iter().copied().find(|&t| t < inputs.len());
        let nonempty = nonempty_partitions(&inputs, 5);
        let first_reduce = poison_reduce.iter().copied().find(|p| nonempty.contains(p));
        let expected = match (first_map, first_reduce) {
            (Some(index), _) => Some(SimError::RetriesExhausted {
                stage: FaultStage::Map, index, attempts: budget + 1,
            }),
            (None, Some(index)) => Some(SimError::RetriesExhausted {
                stage: FaultStage::Reduce, index, attempts: budget + 1,
            }),
            (None, None) => None,
        };
        for (shuffle, finalize) in [
            (ShuffleMode::Materialized, FinalizeMode::Static),
            (ShuffleMode::Streaming, FinalizeMode::Static),
            (ShuffleMode::Pipelined, FinalizeMode::Static),
            (ShuffleMode::Pipelined, FinalizeMode::Stealing),
        ] {
            let label = format!("{shuffle:?}/{finalize:?}");
            match (&expected, run(shuffle, finalize)) {
                (Some(want), Err(got)) => prop_assert_eq!(want, &got, "{}", label),
                (None, Ok(_)) => {}
                (want, got) => panic!("{label}: expected {want:?}, got {got:?}"),
            }
        }
    }

    /// Under [`DlqMode::Capture`] exactly the poisoned work lands in the
    /// dead-letter queue — never a silent drop, never an extra entry —
    /// and everything unpoisoned is preserved: the outputs equal a clean
    /// run over the surviving inputs, filtered to the surviving
    /// partitions. Identical in every mode.
    #[test]
    fn capture_mode_dead_letters_exactly_the_poisoned_work(
        inputs in records(),
        raw_poison_map in proptest::collection::vec(0usize..90, 0..4),
        raw_poison_reduce in proptest::collection::vec(0usize..5, 0..3),
        budget in 0u32..4,
    ) {
        let mut poison_map = raw_poison_map;
        poison_map.sort_unstable();
        poison_map.dedup();
        let mut poison_reduce = raw_poison_reduce;
        poison_reduce.sort_unstable();
        poison_reduce.dedup();
        let plan = FaultPlan {
            poison_map_tasks: poison_map.clone(),
            poison_reduce_tasks: poison_reduce.clone(),
            ..FaultPlan::default()
        };
        let run = |shuffle, finalize_mode| {
            Job::new(KvMapper, CountBytes, HashRouter::new(), 5, ClusterConfig {
                shuffle,
                map_threads: 2,
                pipeline_depth: 1,
                finalize_mode,
                retry_budget: budget,
                dlq_mode: DlqMode::Capture,
                fault_plan: Some(plan.clone()),
                ..ClusterConfig::default()
            })
            .run(&inputs)
            .unwrap()
        };
        // Derive the expected DLQ and outputs independently: drop the
        // poisoned map tasks, see which partitions still receive records,
        // and re-run the engine fault-free on the survivors.
        let surviving: Vec<(u64, String)> = inputs
            .iter()
            .enumerate()
            .filter(|(i, _)| !poison_map.contains(i))
            .map(|(_, r)| r.clone())
            .collect();
        let mut expected_dlq: Vec<DlqEntry> = poison_map
            .iter()
            .copied()
            .filter(|&t| t < inputs.len())
            .map(|index| DlqEntry { stage: FaultStage::Map, index, attempts: budget + 1 })
            .collect();
        let nonempty = nonempty_partitions(&surviving, 5);
        expected_dlq.extend(
            poison_reduce
                .iter()
                .copied()
                .filter(|p| nonempty.contains(p))
                .map(|index| DlqEntry { stage: FaultStage::Reduce, index, attempts: budget + 1 }),
        );
        let clean = Job::new(KvMapper, CountBytes, HashRouter::new(), 5, ClusterConfig::default())
            .run(&surviving)
            .unwrap();
        let expected_outputs: Vec<(u64, u64, u64)> = clean
            .outputs
            .into_iter()
            .filter(|(key, _, _)| !poison_reduce.contains(&hash_partition(*key, 5)))
            .collect();
        for (shuffle, finalize) in [
            (ShuffleMode::Materialized, FinalizeMode::Static),
            (ShuffleMode::Streaming, FinalizeMode::Static),
            (ShuffleMode::Pipelined, FinalizeMode::Static),
            (ShuffleMode::Pipelined, FinalizeMode::Stealing),
        ] {
            let label = format!("{shuffle:?}/{finalize:?}");
            let out = run(shuffle, finalize);
            prop_assert_eq!(&expected_dlq, &out.dlq, "{}: DLQ mismatch", label);
            prop_assert_eq!(&expected_outputs, &out.outputs, "{}: outputs mismatch", label);
            prop_assert_eq!(
                out.metrics.faults.dlq_len,
                expected_dlq.len() as u64,
                "{}: dlq_len mismatch", label
            );
        }
    }

    #[test]
    fn zero_capacity_flags_any_nonempty_reducer(inputs in records()) {
        let job = Job::new(KvMapper, CountBytes, HashRouter::new(), 4, ClusterConfig::default())
            .capacity(CapacityPolicy::Record(0));
        let result = job.run(&inputs).unwrap();
        let nonzero_loads = result
            .metrics
            .reducer_value_bytes
            .iter()
            .filter(|&&b| b > 0)
            .count();
        prop_assert_eq!(result.metrics.capacity_violations.len(), nonzero_loads);
    }
}

// ---------------------------------------------------------------------------
// Out-of-core spill properties: for arbitrary workloads, budgets, thread
// counts, and pipeline depths the budget is a hard bound on buffered run
// bytes, spilling never changes a byte of output, and the spill directory
// is empty again after success, error, and user-panic runs alike.
// ---------------------------------------------------------------------------

/// Nonempty record sets for the spill properties (an empty workload cannot
/// spill, which would make the forcing properties vacuous).
fn nonempty_records() -> impl Strategy<Value = Vec<(u64, String)>> {
    proptest::collection::vec((0u64..40, "[a-z]{0,12}"), 1..80)
}

/// A fresh scratch directory per case so concurrent proptest cases cannot
/// see each other's temp files.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mrassign-props-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir must be creatable");
    dir
}

/// Asserts the scratch directory holds no leftover spill files, then
/// removes it.
fn assert_empty_and_remove(dir: &std::path::Path, context: &str) {
    let leftovers: Vec<_> = std::fs::read_dir(dir)
        .expect("scratch dir must be readable")
        .map(|e| e.expect("dir entry must be readable").file_name())
        .collect();
    assert!(
        leftovers.is_empty(),
        "{context}: spill files leaked: {leftovers:?}"
    );
    std::fs::remove_dir_all(dir).expect("scratch dir must be removable");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The budget is a hard bound: whatever the workload, thread count,
    /// pipeline depth, finalize mode, and budget, the engine never reports
    /// more buffered run bytes than it was allowed — and the output still
    /// matches the unbudgeted materialized reference bit for bit.
    #[test]
    fn peak_buffered_never_exceeds_the_budget(
        inputs in records(),
        n_red in 1usize..40,
        threads in 1usize..5,
        depth in 1usize..5,
        budget in 1u64..600,
    ) {
        let reference = Job::new(KvMapper, CountBytes, HashRouter::new(), n_red, ClusterConfig::default())
            .run(&inputs)
            .unwrap();
        for finalize_mode in FinalizeMode::ALL {
            let out = Job::new(KvMapper, CountBytes, HashRouter::new(), n_red, ClusterConfig {
                shuffle: ShuffleMode::Pipelined,
                map_threads: threads,
                pipeline_depth: depth,
                finalize_mode,
                memory_budget: Some(budget),
                ..ClusterConfig::default()
            })
            .run(&inputs)
            .unwrap();
            prop_assert_eq!(&reference.outputs, &out.outputs);
            prop_assert_eq!(
                reference.metrics.deterministic(),
                out.metrics.deterministic()
            );
            let p = &out.metrics.pipeline;
            prop_assert!(
                p.peak_buffered_bytes <= budget,
                "peak {} > budget {} ({:?})",
                p.peak_buffered_bytes, budget, finalize_mode
            );
        }
    }

    /// A budget strictly above the unbounded run's peak never spills: the
    /// budget only bites when buffered bytes would actually exceed it.
    /// (`map_threads = 1` keeps block arrival order — and therefore the
    /// unbounded peak — deterministic, so the derived budget is exact.)
    #[test]
    fn budget_above_the_unbounded_peak_never_spills(
        inputs in records(),
        n_red in 1usize..40,
        depth in 1usize..5,
    ) {
        let run = |memory_budget| {
            Job::new(KvMapper, CountBytes, HashRouter::new(), n_red, ClusterConfig {
                shuffle: ShuffleMode::Pipelined,
                map_threads: 1,
                pipeline_depth: depth,
                memory_budget,
                ..ClusterConfig::default()
            })
            .run(&inputs)
            .unwrap()
        };
        let unbounded = run(None);
        prop_assert_eq!(unbounded.metrics.pipeline.spilled_runs, 0);
        let peak = unbounded.metrics.pipeline.peak_buffered_bytes;
        let bounded = run(Some(peak + 1));
        prop_assert_eq!(
            bounded.metrics.pipeline.spilled_runs, 0,
            "budget {} above peak {} must never spill", peak + 1, peak
        );
        prop_assert_eq!(bounded.metrics.pipeline.spilled_bytes, 0);
        prop_assert_eq!(&unbounded.outputs, &bounded.outputs);
    }

    /// A one-byte budget cannot hold even a single record (every key alone
    /// is 8 bytes), so any nonempty workload is forced out of core — and
    /// the output still matches the materialized reference exactly.
    #[test]
    fn tiny_budget_forces_spills_without_changing_output(
        inputs in nonempty_records(),
        n_red in 1usize..40,
        threads in 1usize..5,
    ) {
        let reference = Job::new(KvMapper, CountBytes, HashRouter::new(), n_red, ClusterConfig::default())
            .run(&inputs)
            .unwrap();
        for finalize_mode in FinalizeMode::ALL {
            let out = Job::new(KvMapper, CountBytes, HashRouter::new(), n_red, ClusterConfig {
                shuffle: ShuffleMode::Pipelined,
                map_threads: threads,
                finalize_mode,
                memory_budget: Some(1),
                ..ClusterConfig::default()
            })
            .run(&inputs)
            .unwrap();
            let p = &out.metrics.pipeline;
            prop_assert!(p.spilled_runs > 0, "a 1-byte budget must spill ({finalize_mode:?})");
            prop_assert!(p.spilled_bytes > 0);
            prop_assert!(p.peak_buffered_bytes <= 1);
            prop_assert_eq!(&reference.outputs, &out.outputs);
            prop_assert_eq!(
                reference.metrics.deterministic(),
                out.metrics.deterministic()
            );
        }
    }

    /// Spill temp files never outlive the job. After a successful spilling
    /// run, after a run that fails with a named error, and after a run the
    /// user's own reducer panics out of, the configured spill directory is
    /// empty again — the RAII guards hold on every exit path.
    #[test]
    fn spill_dir_is_empty_after_success_error_and_panic(
        inputs in nonempty_records(),
        threads in 1usize..5,
    ) {
        let base = ClusterConfig {
            shuffle: ShuffleMode::Pipelined,
            map_threads: threads,
            memory_budget: Some(1),
            ..ClusterConfig::default()
        };

        // Success path.
        let dir = scratch_dir("ok");
        let out = Job::new(KvMapper, CountBytes, HashRouter::new(), 5, ClusterConfig {
            spill_dir: Some(dir.clone()),
            ..base.clone()
        })
        .run(&inputs)
        .unwrap();
        prop_assert!(out.metrics.pipeline.spilled_runs > 0);
        assert_empty_and_remove(&dir, "success");

        // Error path: zero-capacity enforcement names an error after the
        // pipeline (and its spills) already ran.
        let dir = scratch_dir("err");
        let result = Job::new(KvMapper, CountBytes, HashRouter::new(), 5, ClusterConfig {
            spill_dir: Some(dir.clone()),
            ..base.clone()
        })
        .capacity(CapacityPolicy::Enforce(0))
        .run(&inputs);
        prop_assert!(result.is_err(), "zero capacity must fail on nonempty input");
        assert_empty_and_remove(&dir, "error");

        // Panic path: the user's reducer panics mid-finalize, after runs
        // have spilled; unwinding must still drop every temp file.
        struct PanickingReducer;
        impl Reducer for PanickingReducer {
            type Key = u64;
            type Value = String;
            type Out = ();
            fn reduce(&self, _: &u64, _: &[String], _: &mut Vec<()>) {
                panic!("user reducer panic (injected by test)");
            }
        }
        let dir = scratch_dir("panic");
        let job = Job::new(KvMapper, PanickingReducer, HashRouter::new(), 5, ClusterConfig {
            spill_dir: Some(dir.clone()),
            ..base
        });
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.run(&inputs)));
        prop_assert!(result.is_err(), "the injected reducer panic must surface");
        assert_empty_and_remove(&dir, "panic");
    }
}
