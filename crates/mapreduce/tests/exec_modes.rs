//! The differential oracle for the execution engine: every shuffle mode,
//! finalize mode, thread count, and capacity policy must produce a
//! bit-identical [`JobOutput`] — outputs *and* the deterministic metrics
//! subset — on four structurally different workloads:
//!
//! * **word count** — a combiner-bearing aggregation with heavy key reuse,
//! * **skew join** — two tagged relations with zipf-ish key skew and
//!   multi-target (replicated) routing,
//! * **boundary schemas** — `SizeDistribution::Boundary` weights solved
//!   into an A2A mapping schema and executed via `DirectRouter`, the
//!   adversarial q/2-straddling family from the paper,
//! * **hot reducer** — a heavy-hitter key routing ~all bytes to one
//!   partition (in the spirit of Fan et al.'s key-distribution skew),
//!   the workload the work-stealing finalize exists for.
//!
//! The reference cell of the matrix is `Materialized × 1 thread`; every
//! other cell (`{Materialized, Streaming, Pipelined × {static, stealing}}
//! × threads {1,2,4} × {Unlimited, Record, Enforce}`) is compared against
//! it. This is the harness that pins the overlapped pipeline engine: if
//! its reassembly, finalize scheduling, accounting, or error handling
//! drifts by one byte, a cell differs.

use mrassign_core::{a2a, InputSet};
use mrassign_simmr::{
    ByteSized, CapacityPolicy, ClusterConfig, DirectRouter, Emitter, FaultPlan, FinalizeMode,
    HashRouter, Job, JobOutput, Mapper, Reducer, Router, ShuffleMode, SimError, SpillCodec,
};
use mrassign_workloads::SizeDistribution;

/// Every engine cell: the pass-based modes (for which the finalize mode
/// is inert) plus the pipelined engine under both finalize schedulers.
const CELLS: [(ShuffleMode, FinalizeMode); 4] = [
    (ShuffleMode::Materialized, FinalizeMode::Static),
    (ShuffleMode::Streaming, FinalizeMode::Static),
    (ShuffleMode::Pipelined, FinalizeMode::Static),
    (ShuffleMode::Pipelined, FinalizeMode::Stealing),
];
const THREADS: [usize; 3] = [1, 2, 4];

fn cluster(shuffle: ShuffleMode, finalize: FinalizeMode, map_threads: usize) -> ClusterConfig {
    ClusterConfig {
        shuffle,
        map_threads,
        finalize_mode: finalize,
        // A small streaming block and pipeline depth so multi-block sweeps
        // and back-pressure are exercised even at test sizes.
        streaming_reducer_block: 8,
        pipeline_depth: 2,
        ..ClusterConfig::default()
    }
}

/// Runs one cell and compares it against the reference, asserting output
/// and deterministic-metric identity (or identical errors).
fn assert_cell_matches<Out: PartialEq + std::fmt::Debug>(
    reference: &Result<JobOutput<Out>, SimError>,
    cell: Result<JobOutput<Out>, SimError>,
    label: &str,
) {
    match (reference, cell) {
        (Ok(r), Ok(c)) => {
            assert_eq!(r.outputs, c.outputs, "{label}: outputs diverged");
            assert_eq!(
                r.metrics.deterministic(),
                c.metrics.deterministic(),
                "{label}: deterministic metrics diverged"
            );
        }
        (Err(r), Err(c)) => assert_eq!(*r, c, "{label}: errors diverged"),
        (r, c) => panic!("{label}: one mode failed, the other did not: {r:?} vs {c:?}"),
    }
}

/// Sweeps the full matrix for one job constructor.
fn sweep_matrix<Out, F>(policies: &[CapacityPolicy], run: F)
where
    Out: PartialEq + std::fmt::Debug,
    F: Fn(ShuffleMode, FinalizeMode, usize, CapacityPolicy) -> Result<JobOutput<Out>, SimError>,
{
    for &policy in policies {
        let reference = run(ShuffleMode::Materialized, FinalizeMode::Static, 1, policy);
        for (mode, finalize) in CELLS {
            for threads in THREADS {
                let label = format!("{mode:?}/{finalize:?} × threads={threads} × {policy:?}");
                assert_cell_matches(&reference, run(mode, finalize, threads, policy), &label);
            }
        }
    }
}

/// The seeded transient-fault schedule the fault sweeps inject. At rate
/// 0.2 with a budget of 8 retries, the chance any single task burns
/// through the whole budget is 0.2⁹ ≈ 5·10⁻⁷ — so every sweep completes —
/// while the schedule itself is a pure function of the seed, so whether
/// (and where) faults fire is reproducible, not probabilistic.
fn sweep_fault_plan() -> FaultPlan {
    FaultPlan::seeded(23, 0.2)
}

/// Sweeps every engine cell *under injected faults* against the fault-free
/// single-threaded materialized reference: the retry layer must replay the
/// deterministic tasks until outputs and the deterministic metrics subset
/// are bit-identical to a run where nothing ever failed, and the masked
/// fault counters must show the faults actually fired.
fn sweep_faulted<Out, F>(run: F)
where
    Out: PartialEq + std::fmt::Debug,
    F: Fn(ShuffleMode, FinalizeMode, usize, Option<FaultPlan>) -> Result<JobOutput<Out>, SimError>,
{
    let reference = run(ShuffleMode::Materialized, FinalizeMode::Static, 1, None);
    assert!(
        reference.is_ok(),
        "the fault sweep workloads are all clean-run feasible"
    );
    for (mode, finalize) in CELLS {
        for threads in THREADS {
            let label = format!("faulted {mode:?}/{finalize:?} × threads={threads}");
            let cell = run(mode, finalize, threads, Some(sweep_fault_plan()));
            if let Ok(out) = &cell {
                assert!(
                    out.metrics.faults.retries() > 0,
                    "{label}: seed 23 at rate 0.2 must inject at least one fault"
                );
                assert!(out.dlq.is_empty(), "{label}: budget 8 absorbs every fault");
            }
            assert_cell_matches(&reference, cell, &label);
        }
    }
}

// ---------------------------------------------------------------------------
// Workload 1: word count (combiner, heavy key reuse)
// ---------------------------------------------------------------------------

struct Tokenize;
impl Mapper for Tokenize {
    type In = String;
    type Key = String;
    type Value = u64;
    fn map(&self, line: &String, emit: &mut Emitter<String, u64>) {
        for word in line.split_whitespace() {
            emit.emit(word.to_string(), 1);
        }
    }
    fn combine(&self, _key: &String, values: &[u64]) -> Option<u64> {
        Some(values.iter().sum())
    }
}

struct Count;
impl Reducer for Count {
    type Key = String;
    type Value = u64;
    type Out = (String, u64);
    fn reduce(&self, key: &String, values: &[u64], out: &mut Vec<(String, u64)>) {
        out.push((key.clone(), values.iter().sum()));
    }
}

fn word_lines() -> Vec<String> {
    // Deterministic synthetic text with zipf-flavored word frequencies.
    (0..240)
        .map(|i: u64| {
            let mut words = Vec::new();
            for j in 0..(3 + i % 9) {
                let rank = (i * 31 + j * 17) % 97;
                words.push(format!("w{}", rank * rank % 53));
            }
            words.join(" ")
        })
        .collect()
}

#[test]
fn word_count_identical_across_the_matrix() {
    let lines = word_lines();
    sweep_matrix(
        &[
            CapacityPolicy::Unlimited,
            CapacityPolicy::Record(200),
            CapacityPolicy::Enforce(1_000_000),
        ],
        |mode, finalize, threads, policy| {
            Job::new(
                Tokenize,
                Count,
                HashRouter::new(),
                11,
                cluster(mode, finalize, threads),
            )
            .capacity(policy)
            .run(&lines)
        },
    );
}

#[test]
fn word_count_enforce_violation_identical_across_the_matrix() {
    let lines = word_lines();
    sweep_matrix(
        &[CapacityPolicy::Enforce(50)],
        |mode, finalize, threads, policy| {
            Job::new(
                Tokenize,
                Count,
                HashRouter::new(),
                11,
                cluster(mode, finalize, threads),
            )
            .capacity(policy)
            .run(&lines)
        },
    );
}

// ---------------------------------------------------------------------------
// Workload 2: skew join (tagged relations, replicated routing)
// ---------------------------------------------------------------------------

/// A tuple of relation X (tag 0) or Y (tag 1).
#[derive(Clone, Hash)]
struct Tuple {
    tag: u8,
    key: u64,
    payload: String,
}

impl ByteSized for Tuple {
    fn size_bytes(&self) -> u64 {
        1 + 8 + self.payload.len() as u64
    }
}

struct TagMapper;
impl Mapper for TagMapper {
    type In = Tuple;
    type Key = u64;
    type Value = (u8, String);
    fn map(&self, t: &Tuple, emit: &mut Emitter<u64, (u8, String)>) {
        emit.emit(t.key, (t.tag, t.payload.clone()));
    }
}

struct JoinReducer;
impl Reducer for JoinReducer {
    type Key = u64;
    type Value = (u8, String);
    type Out = (u64, String, String);
    fn reduce(&self, key: &u64, values: &[(u8, String)], out: &mut Vec<(u64, String, String)>) {
        for (_, px) in values.iter().filter(|v| v.0 == 0) {
            for (_, py) in values.iter().filter(|v| v.0 == 1) {
                out.push((*key, px.clone(), py.clone()));
            }
        }
    }
}

/// Replicates each key to two reducers (a miniature mapping schema), so
/// multi-target routing and deduplicated fan-out are exercised.
struct SpreadRouter;
impl Router<u64> for SpreadRouter {
    fn route(&self, key: &u64, n_reducers: usize, targets: &mut Vec<usize>) {
        targets.push((*key as usize) % n_reducers);
        targets.push((*key as usize * 7 + 3) % n_reducers);
    }
}

fn skewed_tuples() -> Vec<Tuple> {
    // Key 0 is a heavy hitter (~1/3 of all tuples), the rest thin out.
    (0..420)
        .map(|i: u64| {
            let key = if i.is_multiple_of(3) { 0 } else { (i * i) % 37 };
            Tuple {
                tag: (i % 2) as u8,
                key,
                payload: format!("p{i:03}"),
            }
        })
        .collect()
}

#[test]
fn skew_join_identical_across_the_matrix() {
    let tuples = skewed_tuples();
    sweep_matrix(
        &[
            CapacityPolicy::Unlimited,
            CapacityPolicy::Record(2_000),
            CapacityPolicy::Enforce(1_000_000),
        ],
        |mode, finalize, threads, policy| {
            Job::new(
                TagMapper,
                JoinReducer,
                SpreadRouter,
                9,
                cluster(mode, finalize, threads),
            )
            .capacity(policy)
            .run(&tuples)
        },
    );
}

// ---------------------------------------------------------------------------
// Workload 3: boundary-distribution mapping schema (the paper's hard case)
// ---------------------------------------------------------------------------

#[derive(Clone, Hash)]
struct Blob {
    bytes: u64,
    targets: Vec<usize>,
}

impl ByteSized for Blob {
    fn size_bytes(&self) -> u64 {
        self.bytes
    }
}

#[derive(Clone)]
struct Payload(u64);
impl ByteSized for Payload {
    fn size_bytes(&self) -> u64 {
        self.0
    }
}
impl SpillCodec for Payload {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        Some(Payload(u64::decode(bytes)?))
    }
}

struct Replicate;
impl Mapper for Replicate {
    type In = Blob;
    type Key = u64;
    type Value = Payload;
    fn map(&self, b: &Blob, emit: &mut Emitter<u64, Payload>) {
        for &t in &b.targets {
            emit.emit(t as u64, Payload(b.bytes));
        }
    }
}

struct PairCount;
impl Reducer for PairCount {
    type Key = u64;
    type Value = Payload;
    type Out = (u64, u64);
    fn reduce(&self, key: &u64, values: &[Payload], out: &mut Vec<(u64, u64)>) {
        let n = values.len() as u64;
        out.push((*key, n * n.saturating_sub(1) / 2));
    }
}

#[test]
fn boundary_schema_identical_across_the_matrix() {
    let q = 40;
    // Most boundary draws are A2A-infeasible by design (two >q/2 giants);
    // m = 12 at seed 0 is a feasible member of the family.
    let weights = SizeDistribution::Boundary { q }.sample_many(12, 0);
    let inputs = InputSet::from_weights(weights.clone());
    let schema = a2a::solve(&inputs, q, a2a::A2aAlgorithm::Auto)
        .expect("boundary seed 0 is feasible at q = 40 for m = 12");
    let mut routes: Vec<Vec<usize>> = vec![Vec::new(); weights.len()];
    for (rid, r) in schema.reducers().iter().enumerate() {
        for &id in r {
            routes[id as usize].push(rid);
        }
    }
    let blobs: Vec<Blob> = weights
        .iter()
        .zip(&routes)
        .map(|(&bytes, targets)| Blob {
            bytes,
            targets: targets.clone(),
        })
        .collect();
    let n_reducers = schema.reducer_count();
    sweep_matrix(
        &[
            CapacityPolicy::Unlimited,
            CapacityPolicy::Record(q),
            // A valid schema can never trip enforcement at its own q.
            CapacityPolicy::Enforce(q),
        ],
        |mode, finalize, threads, policy| {
            Job::new(
                Replicate,
                PairCount,
                DirectRouter,
                n_reducers,
                cluster(mode, finalize, threads),
            )
            .capacity(policy)
            .run(&blobs)
        },
    );
}

/// Acceptance criterion in miniature: the pipelined runs in the matrix
/// above actually pipelined. This spot-check asserts the engine reported
/// consumer groups and bounded in-flight blocks on a representative cell.
#[test]
fn pipelined_cells_report_bounded_inflight() {
    let lines = word_lines();
    let out = Job::new(
        Tokenize,
        Count,
        HashRouter::new(),
        11,
        cluster(ShuffleMode::Pipelined, FinalizeMode::Static, 4),
    )
    .run(&lines)
    .unwrap();
    let p = &out.metrics.pipeline;
    assert!(p.consumer_groups >= 1);
    assert!(p.blocks_sent > 0);
    assert!(p.peak_inflight_blocks >= 1);
    assert!(
        p.peak_inflight_blocks <= 2 * p.consumer_groups,
        "pipeline_depth = 2 bounds in-flight blocks per group"
    );
    assert!(p.wall_seconds >= 0.0);
}

// ---------------------------------------------------------------------------
// Workload 4: hot reducer (heavy-hitter key, ~all bytes to one partition)
// ---------------------------------------------------------------------------

/// Routes the heavy-hitter key 0 straight to partition 0 and spreads the
/// thin tail over the remaining partitions — the key-distribution skew of
/// Fan et al., concentrated enough that one consumer group drains (and,
/// under static finalize, serializes) almost the entire shuffle.
struct HotRouter;
impl Router<u64> for HotRouter {
    fn route(&self, key: &u64, n_reducers: usize, targets: &mut Vec<usize>) {
        if *key == 0 {
            targets.push(0);
        } else {
            targets.push(1 + (*key as usize - 1) % (n_reducers - 1));
        }
    }
}

struct HotMapper;
impl Mapper for HotMapper {
    type In = (u64, String);
    type Key = u64;
    type Value = String;
    fn map(&self, input: &(u64, String), emit: &mut Emitter<u64, String>) {
        emit.emit(input.0, input.1.clone());
    }
}

/// Order-sensitive: concatenation exposes any reassembly or merge drift.
struct HotConcat;
impl Reducer for HotConcat {
    type Key = u64;
    type Value = String;
    type Out = (u64, String);
    fn reduce(&self, key: &u64, values: &[String], out: &mut Vec<(u64, String)>) {
        out.push((*key, values.concat()));
    }
}

/// ~90% of the records (and bytes) carry the heavy-hitter key 0; the rest
/// thin out over 20 tail keys.
fn hot_records(n: u64) -> Vec<(u64, String)> {
    (0..n)
        .map(|i| {
            let key = if i % 10 != 0 { 0 } else { 1 + (i / 10) % 20 };
            (key, format!("r{i:05}-"))
        })
        .collect()
}

/// The acceptance matrix for the work-stealing finalize: on the workload
/// it was built for, stealing ≡ static ≡ materialized bit-for-bit across
/// threads {1,2,4} × depth {1,4}.
#[test]
fn hot_reducer_identical_across_the_matrix() {
    let records = hot_records(600);
    for depth in [1usize, 4] {
        sweep_matrix(
            &[CapacityPolicy::Unlimited, CapacityPolicy::Record(4_000)],
            |mode, finalize, threads, policy| {
                let mut config = cluster(mode, finalize, threads);
                config.pipeline_depth = depth;
                Job::new(HotMapper, HotConcat, HotRouter, 8, config)
                    .capacity(policy)
                    .run(&records)
            },
        );
    }
}

// ---------------------------------------------------------------------------
// Fault sweeps: every workload, every cell, under a seeded transient-fault
// schedule — the acceptance criterion for the retry layer. The reference
// is always the *fault-free* run, so bit-identity here proves retries are
// invisible to the determinism contract, not merely mode-consistent.
// ---------------------------------------------------------------------------

fn faulted_cluster(
    mode: ShuffleMode,
    finalize: FinalizeMode,
    threads: usize,
    plan: Option<FaultPlan>,
) -> ClusterConfig {
    ClusterConfig {
        retry_budget: 8,
        fault_plan: plan,
        ..cluster(mode, finalize, threads)
    }
}

#[test]
fn word_count_survives_the_fault_sweep_bit_identically() {
    let lines = word_lines();
    sweep_faulted(|mode, finalize, threads, plan| {
        Job::new(
            Tokenize,
            Count,
            HashRouter::new(),
            11,
            faulted_cluster(mode, finalize, threads, plan),
        )
        .run(&lines)
    });
}

#[test]
fn skew_join_survives_the_fault_sweep_bit_identically() {
    let tuples = skewed_tuples();
    sweep_faulted(|mode, finalize, threads, plan| {
        Job::new(
            TagMapper,
            JoinReducer,
            SpreadRouter,
            9,
            faulted_cluster(mode, finalize, threads, plan),
        )
        .run(&tuples)
    });
}

#[test]
fn boundary_schema_survives_the_fault_sweep_bit_identically() {
    let q = 40;
    let weights = SizeDistribution::Boundary { q }.sample_many(12, 0);
    let inputs = InputSet::from_weights(weights.clone());
    let schema = a2a::solve(&inputs, q, a2a::A2aAlgorithm::Auto)
        .expect("boundary seed 0 is feasible at q = 40 for m = 12");
    let mut routes: Vec<Vec<usize>> = vec![Vec::new(); weights.len()];
    for (rid, r) in schema.reducers().iter().enumerate() {
        for &id in r {
            routes[id as usize].push(rid);
        }
    }
    let blobs: Vec<Blob> = weights
        .iter()
        .zip(&routes)
        .map(|(&bytes, targets)| Blob {
            bytes,
            targets: targets.clone(),
        })
        .collect();
    let n_reducers = schema.reducer_count();
    sweep_faulted(|mode, finalize, threads, plan| {
        Job::new(
            Replicate,
            PairCount,
            DirectRouter,
            n_reducers,
            faulted_cluster(mode, finalize, threads, plan),
        )
        .run(&blobs)
    });
}

#[test]
fn hot_reducer_survives_the_fault_sweep_bit_identically() {
    let records = hot_records(600);
    sweep_faulted(|mode, finalize, threads, plan| {
        Job::new(
            HotMapper,
            HotConcat,
            HotRouter,
            8,
            faulted_cluster(mode, finalize, threads, plan),
        )
        .run(&records)
    });
}

/// Speculation layered on top of the fault sweep stays bit-identical too:
/// the LPT-ranked speculative copies compute the same deterministic
/// results as the primaries they race, so turning speculation on is
/// invisible to everything but the masked counters.
#[test]
fn hot_reducer_fault_sweep_with_speculation_stays_bit_identical() {
    let records = hot_records(600);
    let reference = Job::new(
        HotMapper,
        HotConcat,
        HotRouter,
        8,
        cluster(ShuffleMode::Materialized, FinalizeMode::Static, 1),
    )
    .run(&records)
    .unwrap();
    for finalize in [FinalizeMode::Static, FinalizeMode::Stealing] {
        for threads in THREADS {
            let mut config = faulted_cluster(
                ShuffleMode::Pipelined,
                finalize,
                threads,
                Some(sweep_fault_plan()),
            );
            config.speculation = true;
            let out = Job::new(HotMapper, HotConcat, HotRouter, 8, config)
                .run(&records)
                .unwrap();
            let label = format!("speculative {finalize:?} × threads={threads}");
            assert_eq!(reference.outputs, out.outputs, "{label}");
            assert_eq!(
                reference.metrics.deterministic(),
                out.metrics.deterministic(),
                "{label}"
            );
            assert!(out.metrics.faults.retries() > 0, "{label}");
        }
    }
}

// ---------------------------------------------------------------------------
// Budgeted cells: the out-of-core spill path must be invisible to the
// determinism contract. A per-group memory budget tight enough that every
// sweep workload overflows it forces consumers to seal and spill runs to
// disk; finalize then external-merges disk and memory runs — and the
// outputs, the deterministic metrics subset, and the DLQ must all match
// the unbudgeted materialized reference bit for bit, faults included.
// ---------------------------------------------------------------------------

/// Small enough that both budgeted workloads overflow it many times over
/// (the hot partition alone buffers kilobytes), so every budgeted cell
/// actually exercises the spill path rather than vacuously passing.
const TIGHT_BUDGET: u64 = 256;

fn budgeted_cluster(
    finalize: FinalizeMode,
    threads: usize,
    plan: Option<FaultPlan>,
) -> ClusterConfig {
    ClusterConfig {
        memory_budget: Some(TIGHT_BUDGET),
        ..faulted_cluster(ShuffleMode::Pipelined, finalize, threads, plan)
    }
}

/// Asserts one budgeted cell: bit-identical to the reference, empty DLQ,
/// and the spill counters prove the out-of-core path actually ran.
fn assert_budgeted_cell<Out: PartialEq + std::fmt::Debug>(
    reference: &JobOutput<Out>,
    cell: JobOutput<Out>,
    label: &str,
) {
    assert_eq!(reference.outputs, cell.outputs, "{label}: outputs diverged");
    assert_eq!(
        reference.metrics.deterministic(),
        cell.metrics.deterministic(),
        "{label}: deterministic metrics diverged"
    );
    assert!(cell.dlq.is_empty(), "{label}: nothing may dead-letter");
    let p = &cell.metrics.pipeline;
    assert!(p.spilled_runs > 0, "{label}: a tight budget must spill");
    assert!(p.spilled_bytes > 0, "{label}: spilled runs carry bytes");
    assert!(
        p.peak_buffered_bytes <= TIGHT_BUDGET,
        "{label}: peak buffered {} exceeds the budget {TIGHT_BUDGET}",
        p.peak_buffered_bytes
    );
    assert!(
        p.merge_fanin >= 2,
        "{label}: spilling implies a multi-run merge"
    );
}

/// Tight budget × {static, stealing} × threads {1,2,4} × {fault-free, the
/// PR 6 seeded fault sweep} on word count: identical to the unbudgeted
/// materialized reference in every cell, with real spill activity.
#[test]
fn word_count_budgeted_cells_spill_and_stay_bit_identical() {
    let lines = word_lines();
    let reference = Job::new(
        Tokenize,
        Count,
        HashRouter::new(),
        11,
        cluster(ShuffleMode::Materialized, FinalizeMode::Static, 1),
    )
    .run(&lines)
    .unwrap();
    for plan in [None, Some(sweep_fault_plan())] {
        for finalize in [FinalizeMode::Static, FinalizeMode::Stealing] {
            for threads in THREADS {
                let label = format!(
                    "budgeted {finalize:?} × threads={threads} × faulted={}",
                    plan.is_some()
                );
                let cell = Job::new(
                    Tokenize,
                    Count,
                    HashRouter::new(),
                    11,
                    budgeted_cluster(finalize, threads, plan.clone()),
                )
                .run(&lines)
                .unwrap();
                if plan.is_some() {
                    assert!(
                        cell.metrics.faults.retries() > 0,
                        "{label}: faults must fire"
                    );
                }
                assert_budgeted_cell(&reference, cell, &label);
            }
        }
    }
}

/// The same budgeted sweep on the hot-reducer workload — the one whose
/// single hot partition most exceeds the budget — with speculation layered
/// on for the stealing cells, so spilled runs provably survive the
/// `Arc`-shared finalize copies racing each other.
#[test]
fn hot_reducer_budgeted_cells_spill_and_stay_bit_identical() {
    let records = hot_records(600);
    let reference = Job::new(
        HotMapper,
        HotConcat,
        HotRouter,
        8,
        cluster(ShuffleMode::Materialized, FinalizeMode::Static, 1),
    )
    .run(&records)
    .unwrap();
    for plan in [None, Some(sweep_fault_plan())] {
        for finalize in [FinalizeMode::Static, FinalizeMode::Stealing] {
            for threads in THREADS {
                let label = format!(
                    "budgeted hot {finalize:?} × threads={threads} × faulted={}",
                    plan.is_some()
                );
                let mut config = budgeted_cluster(finalize, threads, plan.clone());
                config.speculation = finalize == FinalizeMode::Stealing;
                let cell = Job::new(HotMapper, HotConcat, HotRouter, 8, config)
                    .run(&records)
                    .unwrap();
                assert_budgeted_cell(&reference, cell, &label);
            }
        }
    }
}

/// DLQ behavior under spill: poisoning the hot (spilling) partition under
/// [`DlqMode::Capture`] dead-letters exactly the same entries and keeps
/// exactly the same surviving outputs as the unbudgeted run — spilled
/// state is re-derived deterministically across the retries that burn the
/// budget, and the temp files for the dead partition are still cleaned up
/// (covered by the properties suite).
#[test]
fn budgeted_capture_mode_dead_letters_like_unbudgeted() {
    use mrassign_simmr::DlqMode;
    let records = hot_records(600);
    let plan = FaultPlan {
        poison_reduce_tasks: vec![0],
        ..FaultPlan::default()
    };
    let run = |memory_budget| {
        Job::new(
            HotMapper,
            HotConcat,
            HotRouter,
            8,
            ClusterConfig {
                memory_budget,
                retry_budget: 2,
                dlq_mode: DlqMode::Capture,
                fault_plan: Some(plan.clone()),
                ..cluster(ShuffleMode::Pipelined, FinalizeMode::Stealing, 4)
            },
        )
        .run(&records)
        .unwrap()
    };
    let unbudgeted = run(None);
    let budgeted = run(Some(TIGHT_BUDGET));
    assert_eq!(unbudgeted.dlq, budgeted.dlq, "DLQ diverged under spill");
    assert_eq!(
        unbudgeted.outputs, budgeted.outputs,
        "surviving outputs diverged under spill"
    );
    assert_eq!(
        budgeted.dlq.len(),
        1,
        "the poisoned hot partition dead-letters"
    );
    assert!(
        budgeted.metrics.pipeline.spilled_runs > 0,
        "the poisoned run must actually have spilled"
    );
}

/// Stealing must actually redistribute the hot group's finalize work: with
/// 4 consumer threads over 16 partitions, partitions migrate off their
/// owners (`stolen_partitions > 0`) and the finalize-imbalance ratio
/// strictly improves over the static schedule, where the hot group
/// serializes its whole contiguous range while the other threads idle.
#[test]
fn stealing_redistributes_hot_reducer_finalize_work() {
    // Partition 0 is hot (~25% of all bytes, 5× the mean); the 15 tail
    // partitions carry ~5% each, so under static finalize the hot
    // partition's owner serializes ~40% of the total work (hot + its 3
    // contiguous range-mates) while the other threads idle — exactly the
    // penalty stealing removes. Payloads are long enough that the spans
    // dwarf scheduler noise.
    let records: Vec<(u64, String)> = (0..60_000u64)
        .map(|i| {
            let key = if i % 4 == 0 { 0 } else { 1 + i % 15 };
            (key, format!("record-{i:06}-{}", "x".repeat(48)))
        })
        .collect();
    let run = |finalize_mode| {
        Job::new(
            HotMapper,
            HotConcat,
            HotRouter,
            16,
            ClusterConfig {
                shuffle: ShuffleMode::Pipelined,
                map_threads: 4,
                pipeline_depth: 4,
                finalize_mode,
                ..ClusterConfig::default()
            },
        )
        .run(&records)
        .unwrap()
    };
    // Wall-clock spans and steal counts depend on OS scheduling, so each
    // mode is sampled three times: correctness (bit-identity, static
    // never steals) must hold on *every* run, while the scheduling
    // claims are asserted against the aggregate — any stealing run must
    // migrate work, and the *median* imbalance must strictly improve —
    // so one descheduled thread on a constrained runner cannot flip the
    // verdict.
    let static_runs: Vec<_> = (0..3).map(|_| run(FinalizeMode::Static)).collect();
    let stealing_runs: Vec<_> = (0..3).map(|_| run(FinalizeMode::Stealing)).collect();
    for sample in static_runs.iter().chain(&stealing_runs) {
        assert_eq!(static_runs[0].outputs, sample.outputs);
        assert_eq!(
            static_runs[0].metrics.deterministic(),
            sample.metrics.deterministic()
        );
    }
    for sample in &static_runs {
        assert_eq!(
            sample.metrics.pipeline.stolen_partitions, 0,
            "static never steals"
        );
    }
    let max_stolen = stealing_runs
        .iter()
        .map(|s| s.metrics.pipeline.stolen_partitions)
        .max()
        .unwrap();
    assert!(
        max_stolen > 0,
        "4 threads × 16 partitions with one hot group must migrate work in some run"
    );
    let median_imbalance = |runs: &[mrassign_simmr::JobOutput<(u64, String)>]| {
        let mut samples: Vec<f64> = runs
            .iter()
            .map(|s| s.metrics.pipeline.finalize_imbalance)
            .collect();
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let st = median_imbalance(&static_runs);
    let wk = median_imbalance(&stealing_runs);
    assert!(
        wk < st,
        "stealing must flatten the finalize profile: stealing {wk} vs static {st}"
    );
}

// ---------------------------------------------------------------------------
// Checkpoint/resume cells: a `checkpoint_dir` must be invisible to the
// determinism contract. A cold checkpointed run matches the uncheckpointed
// reference bit for bit; a second run against the same directory replays
// every partition from disk (hits == partitions, misses == 0) and still
// matches; a run killed mid-finalize by a `kill-reduce:` fault verdict
// resumes re-executing strictly fewer partitions than a fresh run would.
// ---------------------------------------------------------------------------

/// A fresh private checkpoint directory per cell, so parallel tests and
/// repeated cells never share manifests.
fn ckpt_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mrassign-exec-ckpt-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    dir
}

/// Word count has 11 reducers in this suite; every checkpoint assertion
/// below counts against this.
const WC_PARTITIONS: u64 = 11;

fn wc_job(config: ClusterConfig) -> Job<Tokenize, Count, HashRouter> {
    Job::new(
        Tokenize,
        Count,
        HashRouter::new(),
        WC_PARTITIONS as usize,
        config,
    )
}

/// Cold + resumed checkpointed runs across shuffle × finalize × threads ×
/// {unbudgeted, tight-budget} × {fault-free, seeded-fault} cells, all
/// pinned to the uncheckpointed materialized reference.
#[test]
fn checkpointed_rerun_is_bit_identical_across_the_matrix() {
    let lines = word_lines();
    let reference = wc_job(cluster(ShuffleMode::Materialized, FinalizeMode::Static, 1))
        .run(&lines)
        .unwrap();
    for (mode, finalize) in CELLS {
        for threads in THREADS {
            for memory_budget in [None, Some(TIGHT_BUDGET)] {
                if memory_budget.is_some() && mode != ShuffleMode::Pipelined {
                    continue;
                }
                for plan in [None, Some(sweep_fault_plan())] {
                    let label = format!(
                        "checkpointed {mode:?}/{finalize:?} × threads={threads} × \
                         budgeted={} × faulted={}",
                        memory_budget.is_some(),
                        plan.is_some()
                    );
                    let dir = ckpt_dir("matrix");
                    let config = ClusterConfig {
                        checkpoint_dir: Some(dir.clone()),
                        memory_budget,
                        retry_budget: 8,
                        fault_plan: plan.clone(),
                        ..cluster(mode, finalize, threads)
                    };

                    let cold = wc_job(config.clone()).run(&lines).unwrap();
                    assert_eq!(reference.outputs, cold.outputs, "{label}: cold outputs");
                    assert_eq!(
                        reference.metrics.deterministic(),
                        cold.metrics.deterministic(),
                        "{label}: cold deterministic metrics"
                    );
                    assert_eq!(cold.metrics.pipeline.checkpoint_hits, 0, "{label}: cold");
                    // The executed-partition count is mode-shaped (the
                    // pass-based engines skip empty partitions before the
                    // checkpoint lookup; the pipelined engine finalizes
                    // all of them), so calibrate from the cold run.
                    let executed = cold.metrics.pipeline.checkpoint_misses;
                    assert!(executed > 0, "{label}: cold misses every partition");

                    let resumed = wc_job(config).run(&lines).unwrap();
                    assert_eq!(
                        reference.outputs, resumed.outputs,
                        "{label}: resumed outputs"
                    );
                    assert_eq!(
                        reference.metrics.deterministic(),
                        resumed.metrics.deterministic(),
                        "{label}: resumed deterministic metrics"
                    );
                    assert_eq!(
                        resumed.metrics.pipeline.checkpoint_hits, executed,
                        "{label}: resume replays every partition from disk"
                    );
                    assert_eq!(
                        resumed.metrics.pipeline.checkpoint_misses, 0,
                        "{label}: resume re-executes nothing"
                    );
                    std::fs::remove_dir_all(&dir).unwrap();
                }
            }
        }
    }
}

/// The recovery path end to end, per cell: a `kill-reduce:` verdict
/// panics the job with every partition but the last one committed;
/// re-running the same job (kill list dropped — it is execution-only and
/// outside the fingerprint) against the same directory finishes
/// bit-identical to the fresh reference while re-executing exactly the
/// one killed partition.
#[test]
fn killed_job_resumes_reexecuting_strictly_fewer_partitions() {
    let lines = word_lines();
    let reference = wc_job(cluster(ShuffleMode::Materialized, FinalizeMode::Static, 1))
        .run(&lines)
        .unwrap();
    for (mode, finalize) in CELLS {
        // How many partitions this engine shape actually executes (the
        // pass-based engines skip empty ones): a throwaway checkpointed
        // run, with the same inert fault-plan skeleton the resume uses so
        // its fingerprint matches the counts being calibrated.
        let probe_dir = ckpt_dir("kill-probe");
        let probe = wc_job(ClusterConfig {
            checkpoint_dir: Some(probe_dir.clone()),
            fault_plan: Some(FaultPlan::default()),
            ..cluster(mode, FinalizeMode::Static, 1)
        })
        .run(&lines)
        .unwrap();
        let executed = probe.metrics.pipeline.checkpoint_misses;
        std::fs::remove_dir_all(&probe_dir).unwrap();
        assert!(executed > 1, "calibration run must execute partitions");

        for threads in THREADS {
            let label = format!("killed {mode:?}/{finalize:?} × threads={threads}");
            let dir = ckpt_dir("kill");
            // The kill run is single-threaded under static finalize so
            // partitions commit strictly in order before the verdict for
            // the last partition fires — making the resume accounting
            // exact. (Work-stealing finalize commits out of order, which
            // is fine for recovery but not for exact-count assertions;
            // both knobs are execution-only and outside the fingerprint,
            // so the resume cell below still matches.)
            let kill_config = ClusterConfig {
                checkpoint_dir: Some(dir.clone()),
                fault_plan: Some(FaultPlan {
                    kill_reduce_tasks: vec![WC_PARTITIONS as usize - 1],
                    ..FaultPlan::default()
                }),
                ..cluster(mode, FinalizeMode::Static, 1)
            };
            let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                wc_job(kill_config).run(&lines)
            }));
            assert!(
                killed.is_err(),
                "{label}: the kill verdict must panic the run"
            );

            // Resume in the actual cell shape: thread count, like every
            // execution-only knob, is outside the fingerprint. The kill
            // list is dropped but the (semantically inert) plan skeleton
            // stays, keeping the fingerprint's fault signature equal.
            let resume_config = ClusterConfig {
                checkpoint_dir: Some(dir.clone()),
                fault_plan: Some(FaultPlan::default()),
                ..cluster(mode, finalize, threads)
            };
            let resumed = wc_job(resume_config).run(&lines).unwrap();
            assert_eq!(reference.outputs, resumed.outputs, "{label}: outputs");
            assert_eq!(
                reference.metrics.deterministic(),
                resumed.metrics.deterministic(),
                "{label}: deterministic metrics"
            );
            assert_eq!(
                resumed.metrics.pipeline.checkpoint_hits,
                executed - 1,
                "{label}: every partition committed before the kill is skipped"
            );
            assert_eq!(
                resumed.metrics.pipeline.checkpoint_misses, 1,
                "{label}: only the killed partition re-executes"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// Damaged checkpoint state must degrade to re-execution with a named
/// warning — never to a panic, and never to a wrong byte: a torn manifest
/// tail, a bit-flipped manifest entry, a version-bumped header, and a
/// corrupted partition file each leave the resumed run bit-identical to
/// the reference with `checkpoint_invalid` counting the damage.
#[test]
fn corrupt_checkpoints_fall_back_to_fresh_execution() {
    let lines = word_lines();
    let reference = wc_job(cluster(ShuffleMode::Materialized, FinalizeMode::Static, 1))
        .run(&lines)
        .unwrap();
    type Corruption = (&'static str, fn(&std::path::Path));
    let corruptions: [Corruption; 4] = [
        ("torn manifest tail", |job_dir| {
            let manifest = job_dir.join("manifest.bin");
            let len = std::fs::metadata(&manifest).unwrap().len();
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&manifest)
                .unwrap();
            file.set_len(len - 10).unwrap();
        }),
        ("bit-flipped manifest entry", |job_dir| {
            let manifest = job_dir.join("manifest.bin");
            let mut bytes = std::fs::read(&manifest).unwrap();
            let idx = bytes.len() - 20; // inside the last entry's payload
            bytes[idx] ^= 0x40;
            std::fs::write(&manifest, bytes).unwrap();
        }),
        ("version-bumped header", |job_dir| {
            let manifest = job_dir.join("manifest.bin");
            let mut bytes = std::fs::read(&manifest).unwrap();
            bytes[8] = bytes[8].wrapping_add(1); // u32 version little-endian
            std::fs::write(&manifest, bytes).unwrap();
        }),
        ("corrupted partition file", |job_dir| {
            let part = job_dir.join("part-3.ckpt");
            let mut bytes = std::fs::read(&part).unwrap();
            let idx = bytes.len() / 2;
            bytes[idx] ^= 0xFF;
            std::fs::write(&part, bytes).unwrap();
        }),
    ];
    for (what, corrupt) in corruptions {
        let dir = ckpt_dir("corrupt");
        let config = ClusterConfig {
            checkpoint_dir: Some(dir.clone()),
            ..cluster(ShuffleMode::Pipelined, FinalizeMode::Static, 2)
        };
        wc_job(config.clone()).run(&lines).unwrap();
        let job_dir = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .find(|p| {
                p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("job-"))
            })
            .expect("the cold run committed a job directory");
        corrupt(&job_dir);

        let resumed = wc_job(config).run(&lines).unwrap();
        assert_eq!(reference.outputs, resumed.outputs, "{what}: outputs");
        assert_eq!(
            reference.metrics.deterministic(),
            resumed.metrics.deterministic(),
            "{what}: deterministic metrics"
        );
        assert!(
            resumed.metrics.pipeline.checkpoint_invalid > 0,
            "{what}: the damage must be counted"
        );
        assert!(
            resumed.metrics.pipeline.checkpoint_misses > 0,
            "{what}: damaged partitions re-execute"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The startup sweep reclaims temp files a killed process left behind: a
/// fabricated spill run owned by an impossible (hence provably dead) PID
/// disappears during the next checkpointed run and is counted.
#[test]
fn startup_sweep_reclaims_dead_process_orphans() {
    let lines = word_lines();
    let dir = ckpt_dir("orphan");
    // u32::MAX is far above every Linux pid_max, so this owner can never
    // be alive and the sweep must treat the file as a dead orphan.
    let orphan = dir.join(format!("mrassign-spill-{}-0.run", u32::MAX));
    std::fs::write(&orphan, b"leftover sorted run bytes").unwrap();
    let out = wc_job(ClusterConfig {
        checkpoint_dir: Some(dir.clone()),
        ..cluster(ShuffleMode::Pipelined, FinalizeMode::Static, 1)
    })
    .run(&lines)
    .unwrap();
    assert!(!orphan.exists(), "the sweep must delete the orphan");
    assert!(
        out.metrics.pipeline.orphans_reclaimed >= 1,
        "reclaimed orphans are counted"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
