//! The differential oracle for the execution engine: every shuffle mode,
//! thread count, and capacity policy must produce a bit-identical
//! [`JobOutput`] — outputs *and* the deterministic metrics subset — on
//! three structurally different workloads:
//!
//! * **word count** — a combiner-bearing aggregation with heavy key reuse,
//! * **skew join** — two tagged relations with zipf-ish key skew and
//!   multi-target (replicated) routing,
//! * **boundary schemas** — `SizeDistribution::Boundary` weights solved
//!   into an A2A mapping schema and executed via `DirectRouter`, the
//!   adversarial q/2-straddling family from the paper.
//!
//! The reference cell of the matrix is `Materialized × 1 thread`; every
//! other cell (`{Materialized, Streaming, Pipelined} × threads {1,2,4} ×
//! {Unlimited, Record, Enforce}`) is compared against it. This is the
//! harness that pins the overlapped pipeline engine: if its reassembly,
//! accounting, or error handling drifts by one byte, a cell differs.

use mrassign_core::{a2a, InputSet};
use mrassign_simmr::{
    ByteSized, CapacityPolicy, ClusterConfig, DirectRouter, Emitter, HashRouter, Job, JobOutput,
    Mapper, Reducer, Router, ShuffleMode, SimError,
};
use mrassign_workloads::SizeDistribution;

const MODES: [ShuffleMode; 3] = [
    ShuffleMode::Materialized,
    ShuffleMode::Streaming,
    ShuffleMode::Pipelined,
];
const THREADS: [usize; 3] = [1, 2, 4];

fn cluster(shuffle: ShuffleMode, map_threads: usize) -> ClusterConfig {
    ClusterConfig {
        shuffle,
        map_threads,
        // A small streaming block and pipeline depth so multi-block sweeps
        // and back-pressure are exercised even at test sizes.
        streaming_reducer_block: 8,
        pipeline_depth: 2,
        ..ClusterConfig::default()
    }
}

/// Runs one cell and compares it against the reference, asserting output
/// and deterministic-metric identity (or identical errors).
fn assert_cell_matches<Out: PartialEq + std::fmt::Debug>(
    reference: &Result<JobOutput<Out>, SimError>,
    cell: Result<JobOutput<Out>, SimError>,
    label: &str,
) {
    match (reference, cell) {
        (Ok(r), Ok(c)) => {
            assert_eq!(r.outputs, c.outputs, "{label}: outputs diverged");
            assert_eq!(
                r.metrics.deterministic(),
                c.metrics.deterministic(),
                "{label}: deterministic metrics diverged"
            );
        }
        (Err(r), Err(c)) => assert_eq!(*r, c, "{label}: errors diverged"),
        (r, c) => panic!("{label}: one mode failed, the other did not: {r:?} vs {c:?}"),
    }
}

/// Sweeps the full matrix for one job constructor.
fn sweep_matrix<Out, F>(policies: &[CapacityPolicy], run: F)
where
    Out: PartialEq + std::fmt::Debug,
    F: Fn(ShuffleMode, usize, CapacityPolicy) -> Result<JobOutput<Out>, SimError>,
{
    for &policy in policies {
        let reference = run(ShuffleMode::Materialized, 1, policy);
        for mode in MODES {
            for threads in THREADS {
                let label = format!("{mode:?} × threads={threads} × {policy:?}");
                assert_cell_matches(&reference, run(mode, threads, policy), &label);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Workload 1: word count (combiner, heavy key reuse)
// ---------------------------------------------------------------------------

struct Tokenize;
impl Mapper for Tokenize {
    type In = String;
    type Key = String;
    type Value = u64;
    fn map(&self, line: &String, emit: &mut Emitter<String, u64>) {
        for word in line.split_whitespace() {
            emit.emit(word.to_string(), 1);
        }
    }
    fn combine(&self, _key: &String, values: &[u64]) -> Option<u64> {
        Some(values.iter().sum())
    }
}

struct Count;
impl Reducer for Count {
    type Key = String;
    type Value = u64;
    type Out = (String, u64);
    fn reduce(&self, key: &String, values: &[u64], out: &mut Vec<(String, u64)>) {
        out.push((key.clone(), values.iter().sum()));
    }
}

fn word_lines() -> Vec<String> {
    // Deterministic synthetic text with zipf-flavored word frequencies.
    (0..240)
        .map(|i: u64| {
            let mut words = Vec::new();
            for j in 0..(3 + i % 9) {
                let rank = (i * 31 + j * 17) % 97;
                words.push(format!("w{}", rank * rank % 53));
            }
            words.join(" ")
        })
        .collect()
}

#[test]
fn word_count_identical_across_the_matrix() {
    let lines = word_lines();
    sweep_matrix(
        &[
            CapacityPolicy::Unlimited,
            CapacityPolicy::Record(200),
            CapacityPolicy::Enforce(1_000_000),
        ],
        |mode, threads, policy| {
            Job::new(
                Tokenize,
                Count,
                HashRouter::new(),
                11,
                cluster(mode, threads),
            )
            .capacity(policy)
            .run(&lines)
        },
    );
}

#[test]
fn word_count_enforce_violation_identical_across_the_matrix() {
    let lines = word_lines();
    sweep_matrix(&[CapacityPolicy::Enforce(50)], |mode, threads, policy| {
        Job::new(
            Tokenize,
            Count,
            HashRouter::new(),
            11,
            cluster(mode, threads),
        )
        .capacity(policy)
        .run(&lines)
    });
}

// ---------------------------------------------------------------------------
// Workload 2: skew join (tagged relations, replicated routing)
// ---------------------------------------------------------------------------

/// A tuple of relation X (tag 0) or Y (tag 1).
#[derive(Clone)]
struct Tuple {
    tag: u8,
    key: u64,
    payload: String,
}

impl ByteSized for Tuple {
    fn size_bytes(&self) -> u64 {
        1 + 8 + self.payload.len() as u64
    }
}

struct TagMapper;
impl Mapper for TagMapper {
    type In = Tuple;
    type Key = u64;
    type Value = (u8, String);
    fn map(&self, t: &Tuple, emit: &mut Emitter<u64, (u8, String)>) {
        emit.emit(t.key, (t.tag, t.payload.clone()));
    }
}

struct JoinReducer;
impl Reducer for JoinReducer {
    type Key = u64;
    type Value = (u8, String);
    type Out = (u64, String, String);
    fn reduce(&self, key: &u64, values: &[(u8, String)], out: &mut Vec<(u64, String, String)>) {
        for (_, px) in values.iter().filter(|v| v.0 == 0) {
            for (_, py) in values.iter().filter(|v| v.0 == 1) {
                out.push((*key, px.clone(), py.clone()));
            }
        }
    }
}

/// Replicates each key to two reducers (a miniature mapping schema), so
/// multi-target routing and deduplicated fan-out are exercised.
struct SpreadRouter;
impl Router<u64> for SpreadRouter {
    fn route(&self, key: &u64, n_reducers: usize, targets: &mut Vec<usize>) {
        targets.push((*key as usize) % n_reducers);
        targets.push((*key as usize * 7 + 3) % n_reducers);
    }
}

fn skewed_tuples() -> Vec<Tuple> {
    // Key 0 is a heavy hitter (~1/3 of all tuples), the rest thin out.
    (0..420)
        .map(|i: u64| {
            let key = if i.is_multiple_of(3) { 0 } else { (i * i) % 37 };
            Tuple {
                tag: (i % 2) as u8,
                key,
                payload: format!("p{i:03}"),
            }
        })
        .collect()
}

#[test]
fn skew_join_identical_across_the_matrix() {
    let tuples = skewed_tuples();
    sweep_matrix(
        &[
            CapacityPolicy::Unlimited,
            CapacityPolicy::Record(2_000),
            CapacityPolicy::Enforce(1_000_000),
        ],
        |mode, threads, policy| {
            Job::new(
                TagMapper,
                JoinReducer,
                SpreadRouter,
                9,
                cluster(mode, threads),
            )
            .capacity(policy)
            .run(&tuples)
        },
    );
}

// ---------------------------------------------------------------------------
// Workload 3: boundary-distribution mapping schema (the paper's hard case)
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct Blob {
    bytes: u64,
    targets: Vec<usize>,
}

impl ByteSized for Blob {
    fn size_bytes(&self) -> u64 {
        self.bytes
    }
}

#[derive(Clone)]
struct Payload(u64);
impl ByteSized for Payload {
    fn size_bytes(&self) -> u64 {
        self.0
    }
}

struct Replicate;
impl Mapper for Replicate {
    type In = Blob;
    type Key = u64;
    type Value = Payload;
    fn map(&self, b: &Blob, emit: &mut Emitter<u64, Payload>) {
        for &t in &b.targets {
            emit.emit(t as u64, Payload(b.bytes));
        }
    }
}

struct PairCount;
impl Reducer for PairCount {
    type Key = u64;
    type Value = Payload;
    type Out = (u64, u64);
    fn reduce(&self, key: &u64, values: &[Payload], out: &mut Vec<(u64, u64)>) {
        let n = values.len() as u64;
        out.push((*key, n * n.saturating_sub(1) / 2));
    }
}

#[test]
fn boundary_schema_identical_across_the_matrix() {
    let q = 40;
    // Most boundary draws are A2A-infeasible by design (two >q/2 giants);
    // m = 12 at seed 0 is a feasible member of the family.
    let weights = SizeDistribution::Boundary { q }.sample_many(12, 0);
    let inputs = InputSet::from_weights(weights.clone());
    let schema = a2a::solve(&inputs, q, a2a::A2aAlgorithm::Auto)
        .expect("boundary seed 0 is feasible at q = 40 for m = 12");
    let mut routes: Vec<Vec<usize>> = vec![Vec::new(); weights.len()];
    for (rid, r) in schema.reducers().iter().enumerate() {
        for &id in r {
            routes[id as usize].push(rid);
        }
    }
    let blobs: Vec<Blob> = weights
        .iter()
        .zip(&routes)
        .map(|(&bytes, targets)| Blob {
            bytes,
            targets: targets.clone(),
        })
        .collect();
    let n_reducers = schema.reducer_count();
    sweep_matrix(
        &[
            CapacityPolicy::Unlimited,
            CapacityPolicy::Record(q),
            // A valid schema can never trip enforcement at its own q.
            CapacityPolicy::Enforce(q),
        ],
        |mode, threads, policy| {
            Job::new(
                Replicate,
                PairCount,
                DirectRouter,
                n_reducers,
                cluster(mode, threads),
            )
            .capacity(policy)
            .run(&blobs)
        },
    );
}

/// Acceptance criterion in miniature: the pipelined runs in the matrix
/// above actually pipelined. This spot-check asserts the engine reported
/// consumer groups and bounded in-flight blocks on a representative cell.
#[test]
fn pipelined_cells_report_bounded_inflight() {
    let lines = word_lines();
    let out = Job::new(
        Tokenize,
        Count,
        HashRouter::new(),
        11,
        cluster(ShuffleMode::Pipelined, 4),
    )
    .run(&lines)
    .unwrap();
    let p = &out.metrics.pipeline;
    assert!(p.consumer_groups >= 1);
    assert!(p.blocks_sent > 0);
    assert!(p.peak_inflight_blocks >= 1);
    assert!(
        p.peak_inflight_blocks <= 2 * p.consumer_groups,
        "pipeline_depth = 2 bounds in-flight blocks per group"
    );
    assert!(p.wall_seconds >= 0.0);
}
