//! Repository automation, invoked as `cargo xtask <command>` (the alias
//! lives in `.cargo/config.toml`).
//!
//! The one command so far is the ROADMAP's CI bench-regression gate:
//!
//! ```text
//! cargo xtask bench-check [--tolerance <factor>] [--bench <group>]
//! ```
//!
//! It snapshots the committed `BENCH_<group>.json` baseline, re-runs
//! `cargo bench -p mrassign-bench --bench <group>` (which overwrites that
//! file), compares the fresh medians against the baseline, restores the
//! committed baseline, and exits non-zero when any benchmark regressed
//! beyond the tolerance.
//!
//! The comparison is **host-aware**: the baseline records `host_cpus`, and
//! when the current machine's core count differs, rows that exercise
//! parallelism (`threads=N` for N > 1) are skipped and the tolerance is
//! doubled — a 1-core container measuring a 4-thread sweep reports
//! scheduling overhead, not a regression (see `BENCH_planner.json`'s
//! seed history).

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// Default allowed slowdown factor before a row counts as a regression.
/// Generous because CI containers are noisy; tighten locally with
/// `--tolerance`.
const DEFAULT_TOLERANCE: f64 = 1.6;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err(
            "usage: cargo xtask bench-check [--tolerance <factor>] [--bench <group>]".into(),
        );
    };
    match command.as_str() {
        "bench-check" => bench_check(rest),
        other => Err(format!("unknown command `{other}` (expected bench-check)")),
    }
}

fn bench_check(args: &[String]) -> Result<(), String> {
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut bench = "planner".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                let value = it.next().ok_or("--tolerance needs a value")?;
                tolerance = value
                    .parse()
                    .map_err(|_| format!("cannot parse `{value}` as a tolerance factor"))?;
                if tolerance < 1.0 {
                    return Err("a tolerance below 1.0 rejects even identical timings".into());
                }
            }
            "--bench" => bench = it.next().ok_or("--bench needs a value")?.clone(),
            other => {
                return Err(format!(
                    "unknown flag `{other}` (expected --tolerance <factor>, --bench <group>)"
                ));
            }
        }
    }

    let root = workspace_root();
    let baseline_path = root.join(format!("BENCH_{bench}.json"));
    let baseline_raw = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "cannot read committed baseline {}: {e}",
            baseline_path.display()
        )
    })?;
    let baseline = parse_bench_json(&baseline_raw)
        .map_err(|e| format!("baseline {} is malformed: {e}", baseline_path.display()))?;

    println!("running `cargo bench -p mrassign-bench --bench {bench}` ...");
    let status = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
        .args(["bench", "-p", "mrassign-bench", "--bench", &bench])
        .current_dir(&root)
        .status()
        .map_err(|e| format!("failed to spawn cargo bench: {e}"))?;
    // Always restore the committed baseline afterwards, even on failure.
    let fresh_raw = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("bench run produced no {}: {e}", baseline_path.display()));
    std::fs::write(&baseline_path, &baseline_raw)
        .map_err(|e| format!("cannot restore committed baseline: {e}"))?;
    if !status.success() {
        return Err(format!("cargo bench exited with {status}"));
    }
    let fresh = parse_bench_json(&fresh_raw?)
        .map_err(|e| format!("fresh bench output is malformed: {e}"))?;

    let host_matches = fresh.host_cpus == baseline.host_cpus;
    let effective_tolerance = if host_matches {
        tolerance
    } else {
        tolerance * 2.0
    };
    if !host_matches {
        println!(
            "host has {} CPUs but the baseline was recorded on {}: skipping threads>1 rows and \
             widening tolerance to {effective_tolerance:.2}x",
            fresh.host_cpus, baseline.host_cpus
        );
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    let mut skipped = 0usize;
    for (name, base_median) in &baseline.medians {
        // Every skipped row is printed with its reason: a silent skip
        // would make a CI log claim coverage the gate never had.
        if let Some(reason) = skip_reason(name, host_matches, fresh.host_cpus, baseline.host_cpus) {
            skipped += 1;
            println!("  {:>9}  {name}: {reason}", "SKIPPED");
            continue;
        }
        let Some(&fresh_median) = fresh
            .medians
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, m)| m)
        else {
            println!("  MISSING  {name} (present in baseline, absent in fresh run)");
            regressions += 1;
            continue;
        };
        compared += 1;
        let ratio = fresh_median / base_median;
        let verdict = if ratio > effective_tolerance {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {verdict:>9}  {name}: {base_median:.0} ns -> {fresh_median:.0} ns ({ratio:.2}x)"
        );
    }
    if compared == 0 {
        return Err("no comparable benchmark rows (did the bench names change?)".into());
    }
    if regressions > 0 {
        return Err(format!(
            "{regressions} benchmark(s) regressed beyond {effective_tolerance:.2}x; \
             if intentional, re-record the baseline with `cargo bench -p mrassign-bench \
             --bench {bench}` and commit BENCH_{bench}.json"
        ));
    }
    println!(
        "bench-check passed: {compared} row(s) within {effective_tolerance:.2}x\
         {}",
        if skipped > 0 {
            format!(", {skipped} row(s) skipped (host CPU mismatch, see above)")
        } else {
            String::new()
        }
    );
    Ok(())
}

/// Whether a benchmark row exercises multi-thread parallelism.
fn parallel_row(name: &str) -> bool {
    name.split("threads=")
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|n| n.parse::<u32>().ok())
        .is_some_and(|n| n > 1)
}

/// Why a baseline row is excluded from the comparison, if it is: rows
/// that exercise `threads>1` parallelism are not comparable when the
/// current host's CPU count differs from the baseline's (a 1-core
/// container measuring a 4-thread sweep reports scheduling overhead, not
/// a regression). Returns `None` for rows that must be compared.
fn skip_reason(
    name: &str,
    host_matches: bool,
    host_cpus: u64,
    baseline_cpus: u64,
) -> Option<String> {
    if !host_matches && parallel_row(name) {
        Some(format!(
            "threads>1 row is not comparable across host shapes \
             (host has {host_cpus} CPUs, baseline recorded on {baseline_cpus})"
        ))
    } else {
        None
    }
}

/// The workspace root (one level above this crate's manifest).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level under the workspace root")
        .to_path_buf()
}

struct BenchFile {
    host_cpus: u64,
    medians: Vec<(String, f64)>,
}

/// Parses the vendored criterion stub's `BENCH_<group>.json`. The schema is
/// fixed and machine-written (see `vendor/criterion`), so a small
/// field-extraction parser suffices — no serde in the offline workspace.
fn parse_bench_json(raw: &str) -> Result<BenchFile, String> {
    let host_cpus = extract_number(raw, "\"host_cpus\":")
        .ok_or("missing host_cpus field")?
        .parse::<u64>()
        .map_err(|e| format!("bad host_cpus: {e}"))?;
    let mut medians = Vec::new();
    for line in raw.lines() {
        let Some(name_start) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_start + 9..];
        let name = rest
            .split('"')
            .next()
            .ok_or("unterminated benchmark name")?
            .to_string();
        let median = extract_number(line, "\"median_ns\":")
            .ok_or_else(|| format!("benchmark `{name}` has no median_ns"))?
            .parse::<f64>()
            .map_err(|e| format!("benchmark `{name}` has a bad median: {e}"))?;
        medians.push((name, median));
    }
    if medians.is_empty() {
        return Err("no benchmark entries found".into());
    }
    Ok(BenchFile { host_cpus, medians })
}

/// The numeric token following `key` in `raw` (digits, dot, minus).
fn extract_number<'a>(raw: &'a str, key: &str) -> Option<&'a str> {
    let start = raw.find(key)? + key.len();
    let rest = raw[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "group": "planner",
  "unit": "ns",
  "host_cpus": 4,
  "benchmarks": [
    {"name": "planner/frontier/m=100/threads=1", "median_ns": 3290068.0, "samples": 61},
    {"name": "planner/frontier/m=100/threads=4", "median_ns": 3560245.0, "samples": 57}
  ]
}"#;

    #[test]
    fn parses_the_stub_schema() {
        let parsed = parse_bench_json(SAMPLE).unwrap();
        assert_eq!(parsed.host_cpus, 4);
        assert_eq!(parsed.medians.len(), 2);
        assert_eq!(parsed.medians[0].0, "planner/frontier/m=100/threads=1");
        assert!((parsed.medians[1].1 - 3560245.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_malformed_files() {
        assert!(parse_bench_json("{}").is_err());
        assert!(parse_bench_json("{\"host_cpus\": 2}").is_err());
    }

    #[test]
    fn detects_parallel_rows() {
        assert!(parallel_row("planner/frontier/m=100/threads=4"));
        assert!(!parallel_row("planner/frontier/m=100/threads=1"));
        assert!(!parallel_row("binpack/ffd/m=100"));
    }

    /// Skips happen only for parallel rows on a mismatched host, and the
    /// reason names both CPU counts so CI logs are auditable.
    #[test]
    fn skip_reasons_are_explicit_and_named() {
        let name = "planner/frontier/m=100/threads=4";
        assert_eq!(skip_reason(name, true, 4, 4), None);
        let reason = skip_reason(name, false, 1, 4).expect("mismatched host skips parallel rows");
        assert!(reason.contains('1') && reason.contains('4'), "{reason}");
        assert_eq!(
            skip_reason("planner/frontier/m=100/threads=1", false, 1, 4),
            None,
            "serial rows are always compared"
        );
    }

    #[test]
    fn flag_validation() {
        assert!(run(&[]).is_err());
        assert!(run(&["mystery".into()]).is_err());
        let err = bench_check(&["--tolerance".into(), "0.5".into()]).unwrap_err();
        assert!(err.contains("tolerance"), "{err}");
        let err = bench_check(&["--frobnicate".into()]).unwrap_err();
        assert!(err.contains("--tolerance"), "{err}");
    }
}
