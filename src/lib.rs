//! # mrassign — Assignment of Different-Sized Inputs in MapReduce
//!
//! A from-scratch Rust reproduction of *Assignment of Different-Sized
//! Inputs in MapReduce* (Foto Afrati, Shlomi Dolev, Ephraim Korach,
//! Shantanu Sharma, Jeffrey D. Ullman; EDBT 2015 / arXiv:1501.06758).
//!
//! The paper's setting: inputs have **sizes**, every reducer has the same
//! **capacity** `q`, and an algorithm's cost is the **communication** from
//! mappers to reducers. A *mapping schema* assigns inputs to reducers so
//! that (1) no reducer exceeds `q` and (2) every output's inputs meet in
//! at least one reducer. Two NP-complete problems are studied — **A2A**
//! (every pair of inputs must meet; similarity join) and **X2Y** (every
//! cross pair of two sets must meet; skew join) — along with per-regime
//! approximation algorithms and the capacity↔parallelism↔communication
//! tradeoffs.
//!
//! This facade re-exports the whole workspace:
//!
//! * [`core`] *(crate `mrassign-core`)* — the mapping-schema model,
//!   algorithms, exact solvers, and lower bounds;
//! * [`binpack`] *(crate `mrassign-binpack`)* — the bin-packing substrate;
//! * [`simmr`] *(crate `mrassign-simmr`)* — the simulated MapReduce engine;
//! * [`workloads`] *(crate `mrassign-workloads`)* — seeded generators;
//! * [`joins`] *(crate `mrassign-joins`)* — end-to-end similarity join and
//!   skew join with baselines;
//! * [`dag`] *(crate `mrassign-dag`)* — chained MR rounds as a scheduled
//!   stage graph, plus a multi-tenant job server sharing one cluster pool;
//! * [`planner`] *(crate `mrassign-planner`)* — the capacity planner: a
//!   multi-threaded q-frontier sweep choosing `q` under a user objective.
//!
//! ## Quick start
//!
//! ```
//! use mrassign::core::{a2a, bounds, stats::SchemaStats, InputSet};
//!
//! // 100 inputs, sizes 10..=59 bytes, reducers of capacity 120 bytes.
//! let weights: Vec<u64> = (0..100).map(|i| 10 + i % 50).collect();
//! let inputs = InputSet::from_weights(weights);
//! let q = 120;
//!
//! let schema = a2a::solve(&inputs, q, a2a::A2aAlgorithm::Auto).unwrap();
//! schema.validate_a2a(&inputs, q).unwrap();
//!
//! let stats = SchemaStats::for_a2a(&schema, &inputs, q);
//! println!(
//!     "z = {} reducers (lower bound {}), communication {}",
//!     stats.reducers,
//!     bounds::a2a_reducer_lb(&inputs, q),
//!     stats.communication,
//! );
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios (similarity join,
//! skew join, tradeoff exploration) and `crates/bench` for the experiment
//! harness that regenerates every table and figure in `docs/EXPERIMENTS.md`.

pub use mrassign_binpack as binpack;
pub use mrassign_core as core;
pub use mrassign_dag as dag;
pub use mrassign_joins as joins;
pub use mrassign_planner as planner;
pub use mrassign_simmr as simmr;
pub use mrassign_workloads as workloads;
