//! Capacity planning: choose the reducer capacity `q`.
//!
//! The paper leaves `q` as a given ("for example, the main memory of the
//! processors"), but its three tradeoffs make `q` a *decision*: smaller
//! capacities buy parallelism with communication, larger ones starve the
//! worker pool. This module sweeps candidate capacities, builds the schema
//! for each, executes it on the simulated cluster, and picks the best
//! candidate under a user objective — the executable version of the
//! paper's tradeoff discussion.
//!
//! ```
//! use mrassign::planner::{plan_a2a, Objective, PlannerConfig};
//! use mrassign::simmr::ClusterConfig;
//!
//! let weights: Vec<u64> = (0..150).map(|i| 40 + i % 80).collect();
//! let plan = plan_a2a(&weights, &PlannerConfig {
//!     cluster: ClusterConfig { workers: 16, ..ClusterConfig::default() },
//!     candidates: 8,
//!     objective: Objective::MinimizeMakespan,
//!     ..PlannerConfig::default()
//! }).unwrap();
//! assert!(plan.best.makespan <= plan.frontier.first().unwrap().makespan);
//! assert!(plan.best.makespan <= plan.frontier.last().unwrap().makespan);
//! ```

use mrassign_core::{a2a, bounds, x2y, InputSet, SchemaError, Weight, X2yInstance};
use mrassign_simmr::{
    ByteSized, CapacityPolicy, ClusterConfig, DirectRouter, Emitter, Job, JobMetrics, Mapper,
    Reducer,
};

/// What "best capacity" means.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Smallest simulated end-to-end makespan.
    MinimizeMakespan,
    /// Smallest communication cost whose makespan stays within
    /// `slowdown` × the best achievable makespan. `slowdown = 1.0` means
    /// "as fast as possible, then as cheap as possible".
    MinimizeCommunicationWithin {
        /// Allowed slowdown factor relative to the fastest candidate.
        slowdown: f64,
    },
    /// Weighted cost: `makespan_seconds + bytes × cost_per_byte` (e.g.
    /// cross-AZ transfer pricing folded into seconds).
    WeightedCost {
        /// Seconds charged per shuffled byte.
        cost_per_byte: f64,
    },
}

/// Planner parameters.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Simulated cluster the schedule is evaluated on.
    pub cluster: ClusterConfig,
    /// Number of capacity candidates to probe (geometric sweep).
    pub candidates: usize,
    /// Smallest capacity to consider; default = the feasibility threshold.
    pub q_min: Option<Weight>,
    /// Largest capacity to consider; default = total input weight (one
    /// reducer).
    pub q_max: Option<Weight>,
    /// Selection objective.
    pub objective: Objective,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            cluster: ClusterConfig::default(),
            candidates: 10,
            q_min: None,
            q_max: None,
            objective: Objective::MinimizeMakespan,
        }
    }
}

/// One evaluated capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePlan {
    /// The capacity probed.
    pub q: Weight,
    /// Reducers the schema uses at this capacity.
    pub reducers: usize,
    /// Schema communication cost (weight units = bytes).
    pub communication: u128,
    /// Simulated end-to-end makespan (seconds).
    pub makespan: f64,
    /// Speedup over serial execution.
    pub speedup: f64,
    /// Largest reducer load.
    pub max_load: Weight,
}

/// The planner's output: the chosen capacity and the whole frontier for
/// inspection/plotting.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The selected candidate under the objective.
    pub best: CandidatePlan,
    /// Every evaluated candidate, ascending by `q`.
    pub frontier: Vec<CandidatePlan>,
}

/// Plans the reducer capacity for an A2A workload (every pair of inputs
/// must meet).
pub fn plan_a2a(weights: &[Weight], config: &PlannerConfig) -> Result<Plan, SchemaError> {
    let inputs = InputSet::from_weights(weights.to_vec());
    let total: u128 = inputs.total_weight();
    let q_floor = match inputs.two_largest() {
        Some((a, b)) => a + b,
        None => inputs.max_weight().max(1),
    };
    let q_min = config.q_min.unwrap_or(q_floor).max(q_floor).max(1);
    let q_max = config
        .q_max
        .unwrap_or_else(|| u64::try_from(total).unwrap_or(u64::MAX))
        .max(q_min);
    bounds::a2a_feasible(&inputs, q_min)?;

    let mut frontier = Vec::new();
    for q in sweep(q_min, q_max, config.candidates) {
        let schema = a2a::solve(&inputs, q, a2a::A2aAlgorithm::Auto)?;
        let routes = routes_of(schema.reducers(), weights.len());
        let metrics = execute(weights, &routes, schema.reducer_count(), q, &config.cluster);
        frontier.push(CandidatePlan {
            q,
            reducers: schema.reducer_count(),
            communication: schema.communication_cost(&inputs),
            makespan: metrics.total_seconds(),
            speedup: metrics.speedup(),
            max_load: metrics.max_reducer_load(),
        });
    }
    select(frontier, config.objective)
}

/// Plans the reducer capacity for an X2Y workload (every cross pair must
/// meet).
pub fn plan_x2y(
    x_weights: &[Weight],
    y_weights: &[Weight],
    config: &PlannerConfig,
) -> Result<Plan, SchemaError> {
    let inst = X2yInstance::from_weights(x_weights.to_vec(), y_weights.to_vec());
    let total = inst.x.total_weight() + inst.y.total_weight();
    let q_floor = (inst.x.max_weight() + inst.y.max_weight()).max(1);
    let q_min = config.q_min.unwrap_or(q_floor).max(q_floor);
    let q_max = config
        .q_max
        .unwrap_or_else(|| u64::try_from(total).unwrap_or(u64::MAX))
        .max(q_min);
    bounds::x2y_feasible(&inst, q_min)?;

    // Concatenate both sides into one routed-blob job: X ids first.
    let mut weights: Vec<Weight> = x_weights.to_vec();
    weights.extend_from_slice(y_weights);

    let mut frontier = Vec::new();
    for q in sweep(q_min, q_max, config.candidates) {
        let schema = x2y::solve(&inst, q, x2y::X2yAlgorithm::Auto)?;
        let mut routes: Vec<Vec<usize>> = vec![Vec::new(); weights.len()];
        for (rid, r) in schema.reducers().iter().enumerate() {
            for &xi in &r.x {
                routes[xi as usize].push(rid);
            }
            for &yi in &r.y {
                routes[x_weights.len() + yi as usize].push(rid);
            }
        }
        let metrics = execute(
            &weights,
            &routes,
            schema.reducer_count(),
            q,
            &config.cluster,
        );
        frontier.push(CandidatePlan {
            q,
            reducers: schema.reducer_count(),
            communication: schema.communication_cost(&inst),
            makespan: metrics.total_seconds(),
            speedup: metrics.speedup(),
            max_load: metrics.max_reducer_load(),
        });
    }
    select(frontier, config.objective)
}

fn sweep(lo: Weight, hi: Weight, n: usize) -> Vec<Weight> {
    if lo >= hi || n <= 1 {
        return vec![lo];
    }
    let n = n.max(2);
    let ratio = (hi as f64 / lo as f64).powf(1.0 / (n - 1) as f64);
    let mut qs: Vec<Weight> = (0..n)
        .map(|i| ((lo as f64) * ratio.powi(i as i32)).round() as Weight)
        .collect();
    qs[0] = lo;
    qs[n - 1] = hi;
    qs.dedup();
    qs
}

fn routes_of(reducers: &[Vec<u32>], n_inputs: usize) -> Vec<Vec<usize>> {
    let mut routes = vec![Vec::new(); n_inputs];
    for (rid, r) in reducers.iter().enumerate() {
        for &id in r {
            routes[id as usize].push(rid);
        }
    }
    routes
}

fn select(frontier: Vec<CandidatePlan>, objective: Objective) -> Result<Plan, SchemaError> {
    assert!(!frontier.is_empty(), "sweep always yields one candidate");
    let best = match objective {
        Objective::MinimizeMakespan => frontier
            .iter()
            .min_by(|a, b| a.makespan.total_cmp(&b.makespan))
            .expect("nonempty"),
        Objective::MinimizeCommunicationWithin { slowdown } => {
            let fastest = frontier
                .iter()
                .map(|c| c.makespan)
                .fold(f64::INFINITY, f64::min);
            let budget = fastest * slowdown.max(1.0);
            frontier
                .iter()
                .filter(|c| c.makespan <= budget + 1e-12)
                .min_by_key(|c| c.communication)
                .expect("the fastest candidate always qualifies")
        }
        Objective::WeightedCost { cost_per_byte } => frontier
            .iter()
            .min_by(|a, b| {
                let cost = |c: &CandidatePlan| c.makespan + c.communication as f64 * cost_per_byte;
                cost(a).total_cmp(&cost(b))
            })
            .expect("nonempty"),
    }
    .clone();
    Ok(Plan { best, frontier })
}

// --- blob execution (facade-level composition of core + simmr) -----------

#[derive(Clone)]
struct Blob {
    bytes: u64,
    targets: Vec<usize>,
}

impl ByteSized for Blob {
    fn size_bytes(&self) -> u64 {
        self.bytes
    }
}

#[derive(Clone)]
struct SizedPayload(u64);

impl ByteSized for SizedPayload {
    fn size_bytes(&self) -> u64 {
        self.0
    }
}

struct Replicate;

impl Mapper for Replicate {
    type In = Blob;
    type Key = u64;
    type Value = SizedPayload;
    fn map(&self, input: &Blob, emit: &mut Emitter<u64, SizedPayload>) {
        for &t in &input.targets {
            emit.emit(t as u64, SizedPayload(input.bytes));
        }
    }
}

struct Absorb;

impl Reducer for Absorb {
    type Key = u64;
    type Value = SizedPayload;
    type Out = ();
    fn reduce(&self, _: &u64, _: &[SizedPayload], _: &mut Vec<()>) {}
}

fn execute(
    weights: &[Weight],
    routes: &[Vec<usize>],
    n_reducers: usize,
    q: Weight,
    cluster: &ClusterConfig,
) -> JobMetrics {
    if n_reducers == 0 {
        return JobMetrics::default();
    }
    let blobs: Vec<Blob> = weights
        .iter()
        .zip(routes)
        .map(|(&bytes, targets)| Blob {
            bytes,
            targets: targets.clone(),
        })
        .collect();
    Job::new(Replicate, Absorb, DirectRouter, n_reducers, cluster.clone())
        .capacity(CapacityPolicy::Enforce(q))
        .run(&blobs)
        .expect("valid schemas cannot violate capacity")
        .metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_weights(m: usize) -> Vec<u64> {
        (0..m as u64).map(|i| 50 + (i * 13) % 150).collect()
    }

    #[test]
    fn frontier_is_ascending_and_bounded() {
        let plan = plan_a2a(&mixed_weights(100), &PlannerConfig::default()).unwrap();
        assert!(plan.frontier.len() >= 2);
        assert!(plan.frontier.windows(2).all(|w| w[0].q < w[1].q));
        assert!(plan.frontier.iter().all(|c| c.max_load <= c.q));
    }

    #[test]
    fn min_makespan_picks_the_frontier_minimum() {
        let plan = plan_a2a(&mixed_weights(100), &PlannerConfig::default()).unwrap();
        let min = plan
            .frontier
            .iter()
            .map(|c| c.makespan)
            .fold(f64::INFINITY, f64::min);
        assert!((plan.best.makespan - min).abs() < 1e-12);
    }

    #[test]
    fn communication_objective_prefers_larger_q() {
        let weights = mixed_weights(100);
        let cheap = plan_a2a(
            &weights,
            &PlannerConfig {
                objective: Objective::MinimizeCommunicationWithin { slowdown: 100.0 },
                ..PlannerConfig::default()
            },
        )
        .unwrap();
        // With an effectively unlimited slowdown budget the cheapest
        // candidate is the single-reducer end of the sweep.
        let max_q = cheap.frontier.iter().map(|c| c.q).max().unwrap();
        assert_eq!(cheap.best.q, max_q);
    }

    #[test]
    fn tight_slowdown_budget_reduces_to_fastest() {
        let weights = mixed_weights(100);
        let fast = plan_a2a(&weights, &PlannerConfig::default()).unwrap();
        let tight = plan_a2a(
            &weights,
            &PlannerConfig {
                objective: Objective::MinimizeCommunicationWithin { slowdown: 1.0 },
                ..PlannerConfig::default()
            },
        )
        .unwrap();
        assert!(tight.best.makespan <= fast.best.makespan + 1e-12);
    }

    #[test]
    fn weighted_cost_interpolates() {
        let weights = mixed_weights(100);
        // Zero byte cost ≡ makespan objective.
        let a = plan_a2a(
            &weights,
            &PlannerConfig {
                objective: Objective::WeightedCost { cost_per_byte: 0.0 },
                ..PlannerConfig::default()
            },
        )
        .unwrap();
        let b = plan_a2a(&weights, &PlannerConfig::default()).unwrap();
        assert_eq!(a.best.q, b.best.q);
        // Enormous byte cost ≡ communication objective (largest q wins).
        let c = plan_a2a(
            &weights,
            &PlannerConfig {
                objective: Objective::WeightedCost { cost_per_byte: 1e6 },
                ..PlannerConfig::default()
            },
        )
        .unwrap();
        let max_q = c.frontier.iter().map(|p| p.q).max().unwrap();
        assert_eq!(c.best.q, max_q);
    }

    #[test]
    fn x2y_planning_works_end_to_end() {
        let x = mixed_weights(60);
        let y = mixed_weights(40);
        let plan = plan_x2y(&x, &y, &PlannerConfig::default()).unwrap();
        assert!(plan.frontier.len() >= 2);
        assert!(plan.frontier.iter().all(|c| c.max_load <= c.q));
        // Communication decreases along the frontier (larger q, less
        // replication).
        assert!(
            plan.frontier.first().unwrap().communication
                >= plan.frontier.last().unwrap().communication
        );
    }

    #[test]
    fn infeasible_floor_is_rejected() {
        // Two inputs of 100 with q_max capped below 200.
        let err = plan_a2a(
            &[100, 100],
            &PlannerConfig {
                q_min: Some(10),
                q_max: Some(150),
                ..PlannerConfig::default()
            },
        );
        // q_min is raised to the feasibility floor 200 > q_max: the sweep
        // still probes 200, which exceeds q_max but stays feasible.
        assert!(err.is_ok());
        let plan = err.unwrap();
        assert!(plan.best.q >= 200);
    }

    #[test]
    fn trivial_instances_plan_cleanly() {
        let plan = plan_a2a(&[], &PlannerConfig::default()).unwrap();
        assert_eq!(plan.best.reducers, 0);
        let single = plan_a2a(&[42], &PlannerConfig::default()).unwrap();
        assert!(single.best.reducers <= 1);
    }
}
