//! `mrassign` — command-line front end for the mapping-schema library.
//!
//! ```text
//! mrassign gen  --dist uniform:10:100 --m 1000 --seed 7 [--out weights.txt]
//! mrassign a2a  --weights weights.txt --q 200 [--algo <a2a solver>] [--budget <nodes>] [--routes]
//! mrassign x2y  --x xs.txt --y ys.txt --q 200 [--algo <x2y solver>] [--budget <nodes>] [--routes]
//! mrassign plan --weights weights.txt [--workers 16] [--candidates 10]
//!               [--objective makespan|comm:<slowdown>] [--algo <a2a solver>] [--budget <nodes>]
//!               [--threads <n>] [--shuffle materialized|streaming|pipelined]
//!               [--finalize static|stealing] [--retries <n>] [--faults seed:7,rate:0.05]
//!               [--memory-budget <bytes>]
//! mrassign dag  [--workload marginals|skewjoin] [--jobs 4] [--tenants 2] [--pool 2]
//!               [--rows 200] [--seed 42] [--repeat 1] [--stage-cache <bytes>]
//!               [engine knobs as for plan]
//! ```
//!
//! Solver names come from the registry in `mrassign_core::solver`
//! (`mrassign a2a --algo nonsense` lists them). `--algo exact` runs the
//! branch-and-bound optimal solver; `--budget` caps its node count (it is
//! rejected with any other solver) and the summary gains a `search:` line
//! with the node/prune/memo statistics and whether optimality was
//! certified. `--threads` fans the plan command's q-frontier sweep across
//! OS threads, `--shuffle` picks the engine's shuffle mode (`pipelined`
//! runs the overlapped stage-graph engine), and `--finalize` picks the
//! pipelined engine's finalize scheduler (`stealing` lets idle consumer
//! threads take completed partitions off hot ones) — none of them
//! changes any output, only wall-clock time and peak memory. `--faults`
//! injects a seeded transient-fault schedule (keys: `seed`, `rate`,
//! `map-rate`, `reduce-rate`) and `--retries` sets the per-task retry
//! budget; because retries replay deterministic tasks, these don't
//! change the plan either — they exist to smoke the fault-tolerance
//! layer end to end. `--memory-budget` caps the bytes of sorted run data
//! each pipelined consumer group may buffer before sealing runs to disk
//! (the out-of-core shuffle path); like every engine knob it trades
//! memory for I/O without changing a single output byte.
//! `--checkpoint-dir` makes the engine persist every finalized reduce
//! partition under the given directory, keyed by a fingerprint of the
//! job's semantic configuration and workload; re-running the same
//! command against the same directory resumes, replaying committed
//! partitions from disk bit-identically and re-executing only the
//! rest — the recovery path for `--faults` kill lists (`kill-map:`,
//! `kill-reduce:`), which panic a worker mid-task.
//!
//! `mrassign dag` drives the multi-round stage-graph scheduler: it
//! submits `--jobs` copies of a chained-MapReduce workload (`marginals`
//! — the two-round data-cube marginals pipeline — or `skewjoin` — the
//! statistics + join rounds of the skew join) from `--tenants` simulated
//! tenants to one shared `--pool`-worker job server, re-runs every job
//! hand-chained as a referee, verifies the outputs are bit-identical,
//! and prints per-job stage metrics plus the fair-share table. All the
//! engine knobs above apply to every stage of every round. `--repeat`
//! submits every job graph that many times; with `--stage-cache <bytes>`
//! (or the `MRASSIGN_STAGE_CACHE` environment variable — the flag wins)
//! the server keeps a fingerprint-keyed intermediate store of that
//! capacity, so repeat rounds are served from cache, execute strictly
//! fewer stages, and still verify bit-identical against the referee; the
//! summary then ends with a `stage cache: hits …` line.
//!
//! Weight files hold one integer per line; `#` starts a comment. All
//! commands print a human-readable summary; `--routes` additionally dumps
//! `reducer <tab> input,input,...` lines for piping into a real job
//! submitter.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use mrassign::core::exact::{self, SearchBudget, SearchOptions, SearchStats};
use mrassign::core::solver::{a2a_solver, a2a_solver_names, x2y_solver, x2y_solver_names};
use mrassign::core::{
    a2a, bounds, stats::SchemaStats, x2y, AssignmentSolver, InputSet, X2yInstance,
};
use mrassign::dag::marginals::{marginals_graph, run_marginals_chained, MarginalsConfig};
use mrassign::dag::{DagMetrics, JobServer};
use mrassign::joins::{run_skew_join_chained, skew_join_graph, SkewDagConfig};
use mrassign::planner::{plan_a2a_with, Objective, PlannerConfig};
use mrassign::simmr::{ClusterConfig, FaultPlan, FinalizeMode, ShuffleMode};
use mrassign::workloads::cube::{generate_cube, CubeSpec};
use mrassign::workloads::{generate_relation_pair, RelationSpec, SizeDistribution};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  mrassign gen  --dist <spec> --m <n> [--seed <s>] [--out <file>]
  mrassign a2a  --weights <file> --q <n> [--algo <a2a solver>] [--budget <nodes>] [--routes]
  mrassign x2y  --x <file> --y <file> --q <n> [--algo <x2y solver>] [--budget <nodes>] [--routes]
  mrassign plan --weights <file> [--workers <n>] [--candidates <n>] [--objective makespan|comm:<slowdown>]
                [--algo <a2a solver>] [--budget <nodes>] [--threads <n>] [--shuffle materialized|streaming|pipelined]
                [--finalize static|stealing] [--retries <n>] [--faults <spec>]
                [--memory-budget <bytes>] [--checkpoint-dir <dir>]
  mrassign dag  [--workload marginals|skewjoin] [--jobs <n>] [--tenants <n>] [--pool <n>] [--rows <n>]
                [--seed <s>] [--repeat <n>] [--stage-cache <bytes>] [--threads <n>]
                [--shuffle materialized|streaming|pipelined] [--finalize static|stealing]
                [--retries <n>] [--faults <spec>] [--memory-budget <bytes>] [--checkpoint-dir <dir>]

distribution specs: const:<w> | uniform:<lo>:<hi> | zipf:<ranks>:<exp>:<max> | bimodal:<small>:<big>:<frac> | boundary:<q>
a2a solvers: auto | one-reducer | grouping | pairing | bigsmall | bigsmall-shared | exact
x2y solvers: auto | one-reducer | grid | grid-optimized | bighandling | exact
--budget applies to --algo exact only: positive branch-and-bound node cap, e.g. --budget 2000000
--faults injects seeded transient faults: comma-separated seed:<u64>, rate:<f64>, map-rate:<f64>, reduce-rate:<f64>,
         kill-map:<i[+i...]>, kill-reduce:<i[+i...]> (kill lists abort the process mid-task to exercise resume)
--memory-budget caps buffered shuffle bytes per consumer group (pipelined engine spills sorted runs to disk above it)
--checkpoint-dir persists each finalized reduce partition; re-running the same job against the same dir
         resumes, re-executing only partitions that never committed
--stage-cache gives the dag job server a fingerprint-keyed intermediate store of that many bytes
         (MRASSIGN_STAGE_CACHE is the env fallback; the flag wins) and --repeat resubmits every dag
         job that many times, so repeat rounds are served from the store instead of re-executing";

/// Executes a parsed command line; returns the printable result.
fn run(args: &[String]) -> Result<String, String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("no command given".into());
    };
    let flags = parse_flags(rest)?;
    match command.as_str() {
        "gen" => cmd_gen(&flags),
        "a2a" => cmd_a2a(&flags),
        "x2y" => cmd_x2y(&flags),
        "plan" => cmd_plan(&flags),
        "dag" => cmd_dag(&flags),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Parses `--key value` pairs plus bare `--flag` booleans.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(format!("expected a --flag, found `{arg}`"));
        };
        let value = match it.peek() {
            Some(next) if !next.starts_with("--") => it.next().unwrap().clone(),
            _ => "true".to_string(),
        };
        if flags.insert(key.to_string(), value).is_some() {
            return Err(format!("flag --{key} given twice"));
        }
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn parse_num<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("cannot parse `{value}` as {what}"))
}

/// Parses a distribution spec like `uniform:10:100`.
fn parse_dist(spec: &str) -> Result<SizeDistribution, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["const", w] => Ok(SizeDistribution::Constant(parse_num(w, "a weight")?)),
        ["uniform", lo, hi] => Ok(SizeDistribution::Uniform {
            lo: parse_num(lo, "a weight")?,
            hi: parse_num(hi, "a weight")?,
        }),
        ["zipf", ranks, exp, max] => Ok(SizeDistribution::Zipf {
            ranks: parse_num(ranks, "a rank count")?,
            exponent: parse_num(exp, "an exponent")?,
            max_size: parse_num(max, "a weight")?,
        }),
        ["bimodal", small, big, frac] => Ok(SizeDistribution::Bimodal {
            small: parse_num(small, "a weight")?,
            big: parse_num(big, "a weight")?,
            big_fraction: parse_num(frac, "a fraction")?,
        }),
        ["boundary", q] => Ok(SizeDistribution::Boundary {
            q: parse_num(q, "a capacity")?,
        }),
        _ => Err(format!("unknown distribution spec `{spec}`")),
    }
}

/// Parses a weights file: one integer per line, `#` comments, blanks ok.
fn parse_weights(content: &str) -> Result<Vec<u64>, String> {
    let mut weights = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        weights.push(
            line.parse()
                .map_err(|_| format!("line {}: `{line}` is not a weight", lineno + 1))?,
        );
    }
    Ok(weights)
}

fn load_weights(path: &str) -> Result<Vec<u64>, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_weights(&content)
}

fn parse_a2a_algo(name: &str) -> Result<a2a::A2aAlgorithm, String> {
    a2a_solver(name).ok_or_else(|| {
        format!(
            "unknown a2a solver `{name}` (registered: {})",
            a2a_solver_names().join(", ")
        )
    })
}

fn parse_x2y_algo(name: &str) -> Result<x2y::X2yAlgorithm, String> {
    x2y_solver(name).ok_or_else(|| {
        format!(
            "unknown x2y solver `{name}` (registered: {})",
            x2y_solver_names().join(", ")
        )
    })
}

fn parse_shuffle(name: &str) -> Result<ShuffleMode, String> {
    name.parse()
}

fn parse_finalize(name: &str) -> Result<FinalizeMode, String> {
    name.parse()
}

/// Parses the optional `--budget <nodes>` flag and checks it only rides
/// along with `--algo exact` (`algo_name` is the resolved solver name).
fn parse_budget(
    flags: &HashMap<String, String>,
    algo_name: &str,
) -> Result<Option<SearchBudget>, String> {
    let Some(value) = flags.get("budget") else {
        return Ok(None);
    };
    if algo_name != "exact" {
        return Err(format!(
            "--budget only applies to --algo exact (got --algo {algo_name})"
        ));
    }
    let nodes: u64 = value.parse().map_err(|_| {
        format!("cannot parse `{value}` as a node budget (expected a positive integer of branch-and-bound nodes, e.g. --budget 2000000)")
    })?;
    if nodes == 0 {
        return Err(
            "a node budget of 0 can never certify anything; pass a positive integer".into(),
        );
    }
    Ok(Some(SearchBudget::nodes(nodes)))
}

/// Renders the `search:` summary line for exact-solver runs.
fn render_search_stats(stats: &SearchStats, optimal: bool) -> String {
    format!(
        "search:          {} nodes, {} bound prunes, {} dominance prunes, {} memo hits, \
         certified optimal: {optimal}{}",
        stats.nodes,
        stats.pruned_bound,
        stats.pruned_dominance,
        stats.memo_hits,
        if stats.exhausted {
            " (budget exhausted)"
        } else {
            ""
        },
    )
}

fn parse_objective(spec: &str) -> Result<Objective, String> {
    if spec == "makespan" {
        return Ok(Objective::MinimizeMakespan);
    }
    if let Some(slowdown) = spec.strip_prefix("comm:") {
        return Ok(Objective::MinimizeCommunicationWithin {
            slowdown: parse_num(slowdown, "a slowdown factor")?,
        });
    }
    Err(format!("unknown objective `{spec}`"))
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<String, String> {
    let dist = parse_dist(required(flags, "dist")?)?;
    let m: usize = parse_num(required(flags, "m")?, "a count")?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| parse_num(s, "a seed"))
        .transpose()?
        .unwrap_or(0);
    let weights = dist.sample_many(m, seed);
    let body: String = weights.iter().map(|w| format!("{w}\n")).collect();
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &body).map_err(|e| format!("cannot write {path}: {e}"))?;
            Ok(format!("wrote {m} weights from {} to {path}", dist.label()))
        }
        None => Ok(body.trim_end().to_string()),
    }
}

fn cmd_a2a(flags: &HashMap<String, String>) -> Result<String, String> {
    let weights = load_weights(required(flags, "weights")?)?;
    let q: u64 = parse_num(required(flags, "q")?, "a capacity")?;
    let algo = parse_a2a_algo(flags.get("algo").map(String::as_str).unwrap_or("auto"))?;
    let budget = parse_budget(flags, algo.name())?;
    let inputs = InputSet::from_weights(weights);
    let (schema, search_line) = if let a2a::A2aAlgorithm::Exact(default_budget) = algo {
        let result = exact::a2a_exact_with(
            &inputs,
            q,
            budget.unwrap_or(default_budget),
            SearchOptions::default(),
        )
        .map_err(|e| e.to_string())?;
        let line = render_search_stats(&result.stats, result.optimal);
        (result.schema, Some(line))
    } else {
        (algo.solve(&inputs, q).map_err(|e| e.to_string())?, None)
    };
    schema.validate_a2a(&inputs, q).map_err(|e| e.to_string())?;
    let stats = SchemaStats::for_a2a(&schema, &inputs, q);

    let mut out = format!(
        "A2A schema: m = {}, q = {q}\n\
         reducers:        {} (lower bound {})\n\
         communication:   {} (lower bound {})\n\
         replication:     {:.3} copies per weight unit\n\
         max load:        {} / {q}",
        inputs.len(),
        stats.reducers,
        bounds::a2a_reducer_lb(&inputs, q),
        stats.communication,
        bounds::a2a_comm_lb(&inputs, q),
        stats.replication_rate(),
        stats.max_load,
    );
    if let Some(line) = search_line {
        out.push('\n');
        out.push_str(&line);
    }
    if flags.contains_key("routes") {
        out.push('\n');
        out.push_str(&render_routes(schema.reducers()));
    }
    Ok(out)
}

fn cmd_x2y(flags: &HashMap<String, String>) -> Result<String, String> {
    let x = load_weights(required(flags, "x")?)?;
    let y = load_weights(required(flags, "y")?)?;
    let q: u64 = parse_num(required(flags, "q")?, "a capacity")?;
    let algo = parse_x2y_algo(flags.get("algo").map(String::as_str).unwrap_or("auto"))?;
    let budget = parse_budget(flags, algo.name())?;
    let inst = X2yInstance::from_weights(x, y);
    let (schema, search_line) = if let x2y::X2yAlgorithm::Exact(default_budget) = algo {
        let result = exact::x2y_exact_with(
            &inst,
            q,
            budget.unwrap_or(default_budget),
            SearchOptions::default(),
        )
        .map_err(|e| e.to_string())?;
        let line = render_search_stats(&result.stats, result.optimal);
        (result.schema, Some(line))
    } else {
        (algo.solve(&inst, q).map_err(|e| e.to_string())?, None)
    };
    schema.validate(&inst, q).map_err(|e| e.to_string())?;
    let stats = SchemaStats::for_x2y(&schema, &inst, q);

    let mut out = format!(
        "X2Y schema: |X| = {}, |Y| = {}, q = {q}\n\
         reducers:        {} (lower bound {})\n\
         communication:   {} (lower bound {})\n\
         max load:        {} / {q}",
        inst.x.len(),
        inst.y.len(),
        stats.reducers,
        bounds::x2y_reducer_lb(&inst, q),
        stats.communication,
        bounds::x2y_comm_lb(&inst, q),
        stats.max_load,
    );
    if let Some(line) = search_line {
        out.push('\n');
        out.push_str(&line);
    }
    if flags.contains_key("routes") {
        out.push('\n');
        for (rid, r) in schema.reducers().iter().enumerate() {
            out.push_str(&format!(
                "{rid}\tx:{}\ty:{}\n",
                join_ids(&r.x),
                join_ids(&r.y)
            ));
        }
    }
    Ok(out)
}

fn cmd_plan(flags: &HashMap<String, String>) -> Result<String, String> {
    let weights = load_weights(required(flags, "weights")?)?;
    let workers: usize = flags
        .get("workers")
        .map(|s| parse_num(s, "a worker count"))
        .transpose()?
        .unwrap_or(8);
    let candidates: usize = flags
        .get("candidates")
        .map(|s| parse_num(s, "a candidate count"))
        .transpose()?
        .unwrap_or(10);
    let objective = parse_objective(
        flags
            .get("objective")
            .map(String::as_str)
            .unwrap_or("makespan"),
    )?;
    let mut algo = parse_a2a_algo(flags.get("algo").map(String::as_str).unwrap_or("auto"))?;
    if let Some(budget) = parse_budget(flags, algo.name())? {
        algo = a2a::A2aAlgorithm::Exact(budget);
    }
    let shuffle = parse_shuffle(
        flags
            .get("shuffle")
            .map(String::as_str)
            .unwrap_or("materialized"),
    )?;
    let finalize_mode = parse_finalize(
        flags
            .get("finalize")
            .map(String::as_str)
            .unwrap_or("static"),
    )?;
    let threads: usize = match flags.get("threads") {
        Some(s) => parse_num(s, "a thread count")?,
        None => PlannerConfig::default().threads,
    };
    let retry_budget: u32 = match flags.get("retries") {
        Some(s) => parse_num(s, "a retry budget")?,
        None => ClusterConfig::default().retry_budget,
    };
    let fault_plan: Option<FaultPlan> = flags.get("faults").map(|s| s.parse()).transpose()?;
    let memory_budget: Option<u64> = flags
        .get("memory-budget")
        .map(|s| parse_num(s, "a memory budget in bytes"))
        .transpose()?;
    let checkpoint_dir: Option<PathBuf> = flags.get("checkpoint-dir").map(PathBuf::from);

    let cluster = ClusterConfig {
        workers,
        shuffle,
        finalize_mode,
        retry_budget,
        fault_plan,
        memory_budget,
        checkpoint_dir,
        ..ClusterConfig::default()
    };
    // Reject bad knob combinations (e.g. a fault rate outside [0, 1])
    // here, where they map to a flag error, rather than mid-plan.
    cluster.validate().map_err(|e| e.to_string())?;

    let plan = plan_a2a_with(
        algo,
        &weights,
        &PlannerConfig {
            cluster,
            candidates,
            objective,
            threads,
            ..PlannerConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;

    let mut out = String::from("q          reducers  comm            makespan_s  speedup\n");
    for c in &plan.frontier {
        let marker = if c.q == plan.best.q {
            "  <== chosen"
        } else {
            ""
        };
        out.push_str(&format!(
            "{:<10} {:<9} {:<15} {:<11.3} {:<7.2}{marker}\n",
            c.q, c.reducers, c.communication, c.makespan, c.speedup
        ));
    }
    out.push_str(&format!(
        "\nrecommended capacity: q = {} ({} reducers, {:.3}s simulated makespan)",
        plan.best.q, plan.best.reducers, plan.best.makespan
    ));
    Ok(out)
}

/// Parses the engine knobs shared by every stage of a DAG run into one
/// `ClusterConfig` (validated so bad combinations map to flag errors).
fn parse_engine_cluster(flags: &HashMap<String, String>) -> Result<ClusterConfig, String> {
    let shuffle = parse_shuffle(
        flags
            .get("shuffle")
            .map(String::as_str)
            .unwrap_or("materialized"),
    )?;
    let finalize_mode = parse_finalize(
        flags
            .get("finalize")
            .map(String::as_str)
            .unwrap_or("static"),
    )?;
    let map_threads: usize = match flags.get("threads") {
        Some(s) => parse_num(s, "a thread count")?,
        None => ClusterConfig::default().map_threads,
    };
    let retry_budget: u32 = match flags.get("retries") {
        Some(s) => parse_num(s, "a retry budget")?,
        None => ClusterConfig::default().retry_budget,
    };
    let fault_plan: Option<FaultPlan> = flags.get("faults").map(|s| s.parse()).transpose()?;
    let memory_budget: Option<u64> = flags
        .get("memory-budget")
        .map(|s| parse_num(s, "a memory budget in bytes"))
        .transpose()?;
    let checkpoint_dir: Option<PathBuf> = flags.get("checkpoint-dir").map(PathBuf::from);
    let cluster = ClusterConfig {
        shuffle,
        finalize_mode,
        map_threads,
        retry_budget,
        fault_plan,
        memory_budget,
        checkpoint_dir,
        ..ClusterConfig::default()
    };
    cluster.validate().map_err(|e| e.to_string())?;
    Ok(cluster)
}

/// One job line of the `dag` summary: output size, wall time, queueing
/// behavior, and the per-stage wall breakdown.
fn render_dag_job(i: usize, tenant: &str, outputs: usize, what: &str, m: &DagMetrics) -> String {
    let stages: Vec<String> = m
        .stages
        .iter()
        .map(|s| format!("{} {:.4}s", s.stage, s.wall_seconds))
        .collect();
    let cached = if m.cache_hits > 0 {
        format!(", {} stage(s) from cache", m.cache_hits)
    } else {
        String::new()
    };
    format!(
        "job {i} [{tenant}, prio {:+}]: {outputs} {what}, wall {:.4}s, queue wait {:.4}s, \
         max dispatch gap {}{cached} | {}\n",
        m.priority,
        m.wall_seconds,
        m.queue_wait_seconds(),
        m.max_dispatch_gap(),
        stages.join(", "),
    )
}

fn cmd_dag(flags: &HashMap<String, String>) -> Result<String, String> {
    let workload = flags
        .get("workload")
        .map(String::as_str)
        .unwrap_or("marginals");
    let jobs: usize = flags
        .get("jobs")
        .map(|s| parse_num(s, "a job count"))
        .transpose()?
        .unwrap_or(4);
    let tenants: usize = flags
        .get("tenants")
        .map(|s| parse_num(s, "a tenant count"))
        .transpose()?
        .unwrap_or(2);
    let pool: usize = flags
        .get("pool")
        .map(|s| parse_num(s, "a pool size"))
        .transpose()?
        .unwrap_or(2);
    let rows: usize = flags
        .get("rows")
        .map(|s| parse_num(s, "a row count"))
        .transpose()?
        .unwrap_or(200);
    let seed: u64 = flags
        .get("seed")
        .map(|s| parse_num(s, "a seed"))
        .transpose()?
        .unwrap_or(42);
    let repeat: usize = flags
        .get("repeat")
        .map(|s| parse_num(s, "a repeat count"))
        .transpose()?
        .unwrap_or(1);
    for (flag, value) in [
        ("jobs", jobs),
        ("tenants", tenants),
        ("pool", pool),
        ("rows", rows),
        ("repeat", repeat),
    ] {
        if value == 0 {
            return Err(format!("--{flag} must be at least 1"));
        }
    }
    // The stage cache: `--stage-cache <bytes>` wins over the
    // MRASSIGN_STAGE_CACHE environment variable; absent both, the server
    // runs store-less and every submission executes.
    let stage_cache: Option<u64> = match flags.get("stage-cache") {
        Some(s) => Some(parse_num(s, "a stage-cache capacity in bytes")?),
        None => match std::env::var("MRASSIGN_STAGE_CACHE") {
            Ok(v) if !v.is_empty() => Some(
                v.parse()
                    .map_err(|_| format!("MRASSIGN_STAGE_CACHE must be a byte count, got `{v}`"))?,
            ),
            _ => None,
        },
    };
    let cluster = parse_engine_cluster(flags)?;

    let mut out = format!(
        "DAG: workload = {workload}, {jobs} job(s) × {repeat} round(s) from {tenants} tenant(s) \
         on a {pool}-worker pool{}\n",
        match stage_cache {
            Some(bytes) => format!(", stage cache {bytes} bytes"),
            None => String::new(),
        }
    );
    let server = match stage_cache {
        Some(bytes) => JobServer::with_stage_cache(pool, bytes),
        None => JobServer::new(pool),
    };
    let tenant_of = |i: usize| format!("tenant-{}", i % tenants);
    // Rotate priorities so the fair-share scheduler has something to
    // weigh against data readiness.
    let priority_of = |i: usize| (i % 3) as i32 - 1;

    match workload {
        "marginals" => {
            let cfg = MarginalsConfig {
                first_cluster: cluster.clone(),
                second_cluster: cluster,
                ..MarginalsConfig::default()
            };
            let inputs: Vec<_> = (0..jobs)
                .map(|i| {
                    generate_cube(
                        &CubeSpec {
                            n_tuples: rows,
                            ..CubeSpec::default()
                        },
                        seed + i as u64,
                    )
                })
                .collect();
            for round in 0..repeat {
                let handles: Vec<_> = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, tuples)| {
                        let (graph, sink) = marginals_graph(tuples, &cfg);
                        (
                            i,
                            server.submit(&tenant_of(i), priority_of(i), graph, &sink),
                        )
                    })
                    .collect();
                for (i, handle) in handles {
                    let result = handle.join().map_err(|e| e.to_string())?;
                    let referee =
                        run_marginals_chained(&inputs[i], &cfg).map_err(|e| e.to_string())?;
                    if result.output != referee.marginals {
                        return Err(format!(
                            "job {i} round {round}: DAG output diverged from the referee"
                        ));
                    }
                    out.push_str(&render_dag_job(
                        round * jobs + i,
                        &tenant_of(i),
                        result.output.len(),
                        "marginals",
                        &result.metrics,
                    ));
                }
            }
        }
        "skewjoin" => {
            let cfg = SkewDagConfig {
                stats_cluster: cluster.clone(),
                join_cluster: cluster,
                ..SkewDagConfig::default()
            };
            let inputs: Vec<_> = (0..jobs)
                .map(|i| {
                    generate_relation_pair(
                        &RelationSpec {
                            x_tuples: rows,
                            y_tuples: rows,
                            n_keys: (rows as u32 / 10).max(4),
                            skew: 1.1,
                            payload: SizeDistribution::Uniform { lo: 8, hi: 40 },
                        },
                        seed + i as u64,
                    )
                })
                .collect();
            for round in 0..repeat {
                let handles: Vec<_> = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, pair)| {
                        let (graph, sink) = skew_join_graph(pair, &cfg);
                        (
                            i,
                            server.submit(&tenant_of(i), priority_of(i), graph, &sink),
                        )
                    })
                    .collect();
                for (i, handle) in handles {
                    let result = handle.join().map_err(|e| e.to_string())?;
                    let (referee, _) =
                        run_skew_join_chained(&inputs[i], &cfg).map_err(|e| e.to_string())?;
                    if result.output.output != referee.output {
                        return Err(format!(
                            "job {i} round {round}: DAG output diverged from the referee"
                        ));
                    }
                    out.push_str(&render_dag_job(
                        round * jobs + i,
                        &tenant_of(i),
                        result.output.output.len(),
                        &format!(
                            "joined triples ({} heavy keys, {} reducers)",
                            result.output.heavy_keys, result.output.reducers
                        ),
                        &result.metrics,
                    ));
                }
            }
        }
        other => {
            return Err(format!(
                "unknown workload `{other}` (expected marginals or skewjoin)"
            ));
        }
    }

    let shares = server.fair_share();
    let cache_stats = server.stage_cache_stats();
    server.shutdown();
    out.push_str(
        "\nfair share:\ntenant          submitted  completed  stages  cached  service_s\n",
    );
    for s in &shares {
        out.push_str(&format!(
            "{:<15} {:<10} {:<10} {:<7} {:<7} {:.4}\n",
            s.tenant,
            s.jobs_submitted,
            s.jobs_completed,
            s.stages_dispatched,
            s.stages_from_cache,
            s.service_seconds
        ));
    }
    if let Some(stats) = cache_stats {
        out.push_str(&format!(
            "\nstage cache: hits {}, misses {}, evictions {} \
             ({} entries, {}/{} bytes)\n",
            stats.hits,
            stats.misses,
            stats.evictions,
            stats.entries,
            stats.used_bytes,
            stats.capacity_bytes
        ));
    }
    let total = jobs * repeat;
    out.push_str(&format!(
        "\nverified: all {total} DAG output(s) bit-identical to the hand-chained referee"
    ));
    Ok(out)
}

fn render_routes(reducers: &[Vec<u32>]) -> String {
    let mut out = String::new();
    for (rid, r) in reducers.iter().enumerate() {
        out.push_str(&format!("{rid}\t{}\n", join_ids(r)));
    }
    out
}

fn join_ids(ids: &[u32]) -> String {
    ids.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_flag_lookup() {
        let flags: HashMap<String, String> =
            [("q".to_string(), "5".to_string())].into_iter().collect();
        assert_eq!(required(&flags, "q").unwrap(), "5");
        assert!(required(&flags, "missing").is_err());
    }

    #[test]
    fn parse_flags_handles_values_and_booleans() {
        let args: Vec<String> = ["--q", "200", "--routes", "--algo", "auto"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let parsed = parse_flags(&args).unwrap();
        assert_eq!(parsed["q"], "200");
        assert_eq!(parsed["routes"], "true");
        assert_eq!(parsed["algo"], "auto");
    }

    #[test]
    fn parse_flags_rejects_bare_values_and_duplicates() {
        let args: Vec<String> = ["stray"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args).is_err());
        let args: Vec<String> = ["--q", "1", "--q", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn parse_dist_all_forms() {
        assert_eq!(
            parse_dist("const:7").unwrap(),
            SizeDistribution::Constant(7)
        );
        assert_eq!(
            parse_dist("uniform:1:9").unwrap(),
            SizeDistribution::Uniform { lo: 1, hi: 9 }
        );
        assert!(matches!(
            parse_dist("zipf:10:1.5:100").unwrap(),
            SizeDistribution::Zipf { ranks: 10, .. }
        ));
        assert!(matches!(
            parse_dist("bimodal:1:9:0.25").unwrap(),
            SizeDistribution::Bimodal { big: 9, .. }
        ));
        assert_eq!(
            parse_dist("boundary:40").unwrap(),
            SizeDistribution::Boundary { q: 40 }
        );
        assert!(parse_dist("nonsense").is_err());
        assert!(parse_dist("uniform:1").is_err());
        assert!(parse_dist("boundary:x").is_err());
    }

    #[test]
    fn parse_weights_skips_comments_and_blanks() {
        let parsed = parse_weights("10\n# comment\n\n20 # trailing\n30\n").unwrap();
        assert_eq!(parsed, vec![10, 20, 30]);
        assert!(parse_weights("ten").is_err());
    }

    #[test]
    fn gen_without_out_prints_weights() {
        let out = run(&[
            "gen".into(),
            "--dist".into(),
            "const:5".into(),
            "--m".into(),
            "3".into(),
        ])
        .unwrap();
        assert_eq!(out, "5\n5\n5");
    }

    #[test]
    fn a2a_command_end_to_end() {
        let dir = std::env::temp_dir().join("mrassign-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.txt");
        std::fs::write(&path, "10\n20\n30\n40\n").unwrap();
        let out = run(&[
            "a2a".into(),
            "--weights".into(),
            path.to_str().unwrap().into(),
            "--q".into(),
            "100".into(),
            "--routes".into(),
        ])
        .unwrap();
        assert!(out.contains("reducers:"));
        assert!(out.contains("0\t")); // routes dumped
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn x2y_command_end_to_end() {
        let dir = std::env::temp_dir().join("mrassign-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let (xp, yp) = (dir.join("xs.txt"), dir.join("ys.txt"));
        std::fs::write(&xp, "10\n20\n").unwrap();
        std::fs::write(&yp, "5\n15\n25\n").unwrap();
        let out = run(&[
            "x2y".into(),
            "--x".into(),
            xp.to_str().unwrap().into(),
            "--y".into(),
            yp.to_str().unwrap().into(),
            "--q".into(),
            "60".into(),
        ])
        .unwrap();
        assert!(out.contains("X2Y schema"));
        std::fs::remove_file(xp).unwrap();
        std::fs::remove_file(yp).unwrap();
    }

    #[test]
    fn plan_command_recommends_a_capacity() {
        let dir = std::env::temp_dir().join("mrassign-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan-weights.txt");
        let body: String = (0..50).map(|i| format!("{}\n", 30 + i % 20)).collect();
        std::fs::write(&path, body).unwrap();
        let out = run(&[
            "plan".into(),
            "--weights".into(),
            path.to_str().unwrap().into(),
            "--candidates".into(),
            "5".into(),
        ])
        .unwrap();
        assert!(out.contains("recommended capacity"));
        assert!(out.contains("<== chosen"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn plan_honors_threads_and_shuffle_flags() {
        let dir = std::env::temp_dir().join("mrassign-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan-knobs-weights.txt");
        let body: String = (0..50).map(|i| format!("{}\n", 30 + i % 20)).collect();
        std::fs::write(&path, body).unwrap();
        let base = |extra: &[&str]| {
            let mut args: Vec<String> = [
                "plan",
                "--weights",
                path.to_str().unwrap(),
                "--candidates",
                "5",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            args.extend(extra.iter().map(|s| s.to_string()));
            run(&args).unwrap()
        };
        // The plan is identical whatever knobs are set: determinism is the
        // whole point of both flags.
        let reference = base(&[]);
        assert_eq!(reference, base(&["--threads", "4"]));
        assert_eq!(reference, base(&["--shuffle", "streaming"]));
        assert_eq!(reference, base(&["--shuffle", "pipelined"]));
        assert_eq!(
            reference,
            base(&["--shuffle", "pipelined", "--finalize", "stealing"])
        );
        assert_eq!(reference, base(&["--finalize", "static"]));
        assert_eq!(
            reference,
            base(&["--threads", "2", "--shuffle", "streaming"])
        );
        assert_eq!(
            reference,
            base(&["--threads", "4", "--shuffle", "pipelined"])
        );
        std::fs::remove_file(path).unwrap();
    }

    /// `--memory-budget` forces the pipelined engine out of core but, like
    /// every engine knob, never moves the plan; a zero or unparsable
    /// budget is rejected with the knob named.
    #[test]
    fn plan_honors_memory_budget_flag() {
        let dir = std::env::temp_dir().join("mrassign-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan-memory-weights.txt");
        let body: String = (0..50).map(|i| format!("{}\n", 30 + i % 20)).collect();
        std::fs::write(&path, body).unwrap();
        let base = |extra: &[&str]| {
            let mut args: Vec<String> = [
                "plan",
                "--weights",
                path.to_str().unwrap(),
                "--candidates",
                "5",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            args.extend(extra.iter().map(|s| s.to_string()));
            run(&args)
        };
        let reference = base(&[]).unwrap();
        // A tight budget on the pipelined engine spills heavily and still
        // produces the identical q-frontier.
        assert_eq!(
            reference,
            base(&[
                "--shuffle",
                "pipelined",
                "--finalize",
                "stealing",
                "--memory-budget",
                "256",
            ])
            .unwrap()
        );
        assert_eq!(reference, base(&["--memory-budget", "1048576"]).unwrap());
        let err = base(&["--memory-budget", "0"]).unwrap_err();
        assert!(err.contains("memory_budget"), "{err}");
        let err = base(&["--memory-budget", "lots"]).unwrap_err();
        assert!(err.contains("memory budget"), "{err}");
        std::fs::remove_file(path).unwrap();
    }

    /// The fault-injection knobs never change the plan: retries replay
    /// deterministic tasks until the faulted run is bit-identical to the
    /// clean one, so the q-frontier (which is derived from job metrics)
    /// must not move — under either engine. Typos in either flag fail
    /// loudly instead of silently planning fault-free.
    #[test]
    fn plan_under_injected_faults_matches_the_clean_plan() {
        let dir = std::env::temp_dir().join("mrassign-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan-faults-weights.txt");
        let body: String = (0..50).map(|i| format!("{}\n", 30 + i % 20)).collect();
        std::fs::write(&path, body).unwrap();
        let base = |extra: &[&str]| {
            let mut args: Vec<String> = [
                "plan",
                "--weights",
                path.to_str().unwrap(),
                "--candidates",
                "5",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            args.extend(extra.iter().map(|s| s.to_string()));
            run(&args)
        };
        let reference = base(&[]).unwrap();
        assert_eq!(
            reference,
            base(&["--retries", "3", "--faults", "seed:7,rate:0.05"]).unwrap()
        );
        assert_eq!(
            reference,
            base(&[
                "--shuffle",
                "pipelined",
                "--finalize",
                "stealing",
                "--retries",
                "8",
                "--faults",
                "seed:23,rate:0.2",
            ])
            .unwrap()
        );
        let err = base(&["--faults", "seed:7,rat:0.05"]).unwrap_err();
        assert!(err.contains("rat"), "typoed key must be named: {err}");
        let err = base(&["--faults", "seed:7,rate:1.5"]).unwrap_err();
        assert!(
            err.contains("[0, 1]"),
            "out-of-range rate must be rejected: {err}"
        );
        let err = base(&["--retries", "many"]).unwrap_err();
        assert!(err.contains("retry budget"), "{err}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn solver_names_resolve_through_the_registry() {
        for name in [
            "auto",
            "grouping",
            "pairing",
            "bigsmall",
            "bigsmall-shared",
            "exact",
        ] {
            assert!(parse_a2a_algo(name).is_ok(), "{name}");
        }
        for name in ["auto", "grid", "grid-optimized", "bighandling", "exact"] {
            assert!(parse_x2y_algo(name).is_ok(), "{name}");
        }
        assert!(parse_a2a_algo("grid").is_err());
        assert!(parse_x2y_algo("grouping").is_err());
        assert!(parse_shuffle("materialized").is_ok());
        assert!(parse_shuffle("streaming").is_ok());
        assert!(parse_shuffle("pipelined").is_ok());
        let err = parse_shuffle("mystery").unwrap_err();
        assert!(err.contains("pipelined"), "{err}");
        assert!(parse_finalize("static").is_ok());
        assert!(parse_finalize("stealing").is_ok());
        let err = parse_finalize("mystery").unwrap_err();
        assert!(err.contains("stealing"), "{err}");
    }

    #[test]
    fn unknown_algo_errors_name_every_candidate() {
        let err = parse_a2a_algo("bogus").unwrap_err();
        for name in [
            "auto",
            "one-reducer",
            "grouping",
            "pairing",
            "bigsmall",
            "exact",
        ] {
            assert!(err.contains(name), "`{name}` missing from: {err}");
        }
        let err = parse_x2y_algo("bogus").unwrap_err();
        for name in [
            "auto",
            "one-reducer",
            "grid",
            "grid-optimized",
            "bighandling",
            "exact",
        ] {
            assert!(err.contains(name), "`{name}` missing from: {err}");
        }
    }

    #[test]
    fn budget_flag_parses_and_is_guarded() {
        let flags = |pairs: &[(&str, &str)]| -> HashMap<String, String> {
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect()
        };
        // No --budget: fine with any solver.
        assert_eq!(parse_budget(&flags(&[]), "auto").unwrap(), None);
        // --budget with exact: parsed into a nodes-only budget.
        assert_eq!(
            parse_budget(&flags(&[("budget", "1234")]), "exact").unwrap(),
            Some(SearchBudget::nodes(1234))
        );
        // --budget with a heuristic solver is rejected, naming the rule.
        let err = parse_budget(&flags(&[("budget", "1234")]), "auto").unwrap_err();
        assert!(err.contains("--algo exact"), "{err}");
        // Malformed and useless budgets are rejected with guidance.
        let err = parse_budget(&flags(&[("budget", "lots")]), "exact").unwrap_err();
        assert!(err.contains("node budget"), "{err}");
        assert!(parse_budget(&flags(&[("budget", "0")]), "exact").is_err());
    }

    #[test]
    fn a2a_exact_command_prints_search_stats() {
        let dir = std::env::temp_dir().join("mrassign-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exact-weights.txt");
        std::fs::write(&path, "4\n4\n3\n3\n2\n2\n").unwrap();
        let out = run(&[
            "a2a".into(),
            "--weights".into(),
            path.to_str().unwrap().into(),
            "--q".into(),
            "9".into(),
            "--algo".into(),
            "exact".into(),
            "--budget".into(),
            "1000000".into(),
        ])
        .unwrap();
        assert!(out.contains("search:"), "{out}");
        assert!(out.contains("certified optimal: true"), "{out}");
        std::fs::remove_file(path).unwrap();

        let (xp, yp) = (dir.join("exact-x.txt"), dir.join("exact-y.txt"));
        std::fs::write(&xp, "3\n2\n2\n").unwrap();
        std::fs::write(&yp, "3\n2\n").unwrap();
        let out = run(&[
            "x2y".into(),
            "--x".into(),
            xp.to_str().unwrap().into(),
            "--y".into(),
            yp.to_str().unwrap().into(),
            "--q".into(),
            "7".into(),
            "--algo".into(),
            "exact".into(),
        ])
        .unwrap();
        assert!(out.contains("search:"), "{out}");
        std::fs::remove_file(xp).unwrap();
        std::fs::remove_file(yp).unwrap();
    }

    #[test]
    fn budget_with_heuristic_algo_is_rejected_end_to_end() {
        let dir = std::env::temp_dir().join("mrassign-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("budget-guard-weights.txt");
        std::fs::write(&path, "4\n4\n3\n").unwrap();
        for cmd in ["a2a", "plan"] {
            let err = run(&[
                cmd.into(),
                "--weights".into(),
                path.to_str().unwrap().into(),
                "--q".into(),
                "9".into(),
                "--budget".into(),
                "5000".into(),
            ])
            .unwrap_err();
            assert!(err.contains("--algo exact"), "{cmd}: {err}");
        }
        std::fs::remove_file(path).unwrap();
    }

    /// `mrassign dag` runs both workloads end to end on a shared pool,
    /// self-verifies against the hand-chained referee, and reports the
    /// fair-share table for every tenant.
    #[test]
    fn dag_command_end_to_end() {
        let base = ["dag", "--jobs", "3", "--rows", "80", "--pool", "2"];
        for workload in ["marginals", "skewjoin"] {
            let mut args: Vec<String> = base.iter().map(|s| s.to_string()).collect();
            args.extend(["--workload".to_string(), workload.to_string()]);
            let out = run(&args).unwrap();
            assert!(out.contains("job 0 [tenant-0"), "{workload}: {out}");
            assert!(out.contains("job 2 [tenant-0"), "{workload}: {out}");
            assert!(out.contains("tenant-1"), "{workload}: {out}");
            assert!(out.contains("fair share:"), "{workload}: {out}");
            assert!(
                out.contains("verified: all 3 DAG output(s)"),
                "{workload}: {out}"
            );
        }
    }

    /// The engine knobs reach every DAG stage: the job lines (outputs and
    /// stage structure) are identical across engines, and a seeded fault
    /// plan absorbed by retries is invisible in the verified outputs.
    #[test]
    fn dag_command_honors_engine_knobs() {
        let base = |extra: &[&str]| {
            let mut args: Vec<String> = ["dag", "--jobs", "2", "--rows", "60"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            args.extend(extra.iter().map(|s| s.to_string()));
            run(&args)
        };
        let reference = base(&[]).unwrap();
        for knobs in [
            &["--shuffle", "streaming"][..],
            &["--shuffle", "pipelined", "--finalize", "stealing"][..],
            &[
                "--shuffle",
                "pipelined",
                "--memory-budget",
                "4096",
                "--retries",
                "8",
                "--faults",
                "seed:23,rate:0.2",
            ][..],
        ] {
            let out = base(knobs).unwrap();
            assert!(
                out.contains("verified: all 2 DAG output(s)"),
                "{knobs:?}: {out}"
            );
            // Same jobs, same outputs: every line up to the timing fields
            // must match; compare the verified counts per job line.
            assert_eq!(reference.lines().count(), out.lines().count(), "{knobs:?}");
        }
        let err = base(&["--workload", "mystery"]).unwrap_err();
        assert!(err.contains("marginals or skewjoin"), "{err}");
        let err = base(&["--jobs", "0"]).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        let err = base(&["--faults", "seed:7,seed:9"]).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    /// `--repeat` with `--stage-cache` serves repeat rounds from the
    /// intermediate store: the summary reports the hit counter, the
    /// cached job lines say so, and every round still verifies
    /// bit-identical against the hand-chained referee.
    #[test]
    fn dag_command_repeat_hits_the_stage_cache() {
        for workload in ["marginals", "skewjoin"] {
            let args: Vec<String> = [
                "dag",
                "--jobs",
                "2",
                "--rows",
                "60",
                "--repeat",
                "2",
                "--stage-cache",
                "4194304",
                "--workload",
                workload,
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            let out = run(&args).unwrap();
            assert!(
                out.contains("verified: all 4 DAG output(s)"),
                "{workload}: {out}"
            );
            assert!(out.contains("stage cache: hits 2"), "{workload}: {out}");
            assert!(out.contains("from cache"), "{workload}: {out}");
        }
        // Without a store, repeats re-execute and no cache line prints.
        let args: Vec<String> = ["dag", "--jobs", "1", "--rows", "60", "--repeat", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = run(&args).unwrap();
        assert!(!out.contains("stage cache:"), "{out}");
        assert!(out.contains("verified: all 2 DAG output(s)"), "{out}");
    }

    #[test]
    fn unknown_command_and_objectives_error() {
        assert!(run(&["bogus".into()]).is_err());
        assert!(parse_objective("makespan").is_ok());
        assert!(matches!(
            parse_objective("comm:2.0").unwrap(),
            Objective::MinimizeCommunicationWithin { .. }
        ));
        assert!(parse_objective("speed").is_err());
    }

    #[test]
    fn infeasible_instances_surface_as_errors() {
        let dir = std::env::temp_dir().join("mrassign-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("infeasible.txt");
        std::fs::write(&path, "90\n90\n").unwrap();
        let err = run(&[
            "a2a".into(),
            "--weights".into(),
            path.to_str().unwrap().into(),
            "--q".into(),
            "100".into(),
        ])
        .unwrap_err();
        assert!(err.contains("no mapping schema exists"));
        std::fs::remove_file(path).unwrap();
    }
}
