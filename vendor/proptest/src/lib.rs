//! Offline stand-in for the crates.io
//! [`proptest`](https://crates.io/crates/proptest) property-testing crate.
//!
//! The build environment has no network access, so this crate reimplements
//! the subset of proptest's API the workspace's property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_flat_map`, and `boxed`;
//! * strategies for integer/float ranges, tuples, [`Just`](strategy::Just),
//!   `any::<T>()`, [`collection::vec`], and string-generating `&str`
//!   patterns (a small character-class regex subset);
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`
//!   header) and the `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//!   assertion macros.
//!
//! Semantics differ from the real crate in one important way: there is **no
//! shrinking**. A failing case panics with the assertion message (values are
//! visible through `assert_eq!`-style output) instead of a minimized
//! counterexample. Generation is fully deterministic per test function —
//! the RNG is seeded from the test's name — so failures reproduce exactly
//! on re-run. Case counts default to 64 (`ProptestConfig::default`) and are
//! honored from `ProptestConfig::with_cases`.

pub mod strategy;

pub mod test_runner {
    //! Deterministic RNG driving value generation.

    /// SplitMix64 stream seeded from the owning test's name: deterministic
    /// across runs and platforms, independent across tests.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a over its bytes).
        pub fn for_test(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[lo, hi]` (inclusive). `lo <= hi` required.
        pub fn uniform_u128(&mut self, lo: u128, hi: u128) -> u128 {
            debug_assert!(lo <= hi);
            let span = hi - lo + 1;
            if span == 0 {
                // Full u128 span cannot happen from the range impls here.
                return self.next_u64() as u128;
            }
            lo + (self.next_u64() as u128) % span
        }
    }
}

/// Run-time configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod collection {
    //! Strategies for collections (only `vec` is provided).

    use crate::strategy::{Strategy, VecStrategy};

    /// Lengths acceptable to [`vec()`]: a fixed size or a size range.
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1))
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy::new(element, min, max)
    }
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that generates `cases` random bindings and runs the
/// body on each. An optional `#![proptest_config(expr)]` header sets the
/// [`ProptestConfig`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl [$cfg] $($rest)*);
    };
    (@impl [$cfg:expr] $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    let ($($pat,)+) = $crate::strategy::Strategy::new_value(
                        &($($strat,)+),
                        &mut rng,
                    );
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl [$crate::ProptestConfig::default()] $($rest)*);
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}
