//! The [`Strategy`] trait and the value-generation combinators.
//!
//! Unlike real proptest, a strategy here is just a deterministic generator:
//! `new_value(rng)` produces one value, and combinators compose generators.
//! There is no value tree and no shrinking.

use crate::test_runner::TestRng;

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it. This is how dependent instances (e.g. "weights below `q/2`") are
    /// expressed.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy type so alternatives can share one type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_new_value(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S> VecStrategy<S> {
    pub(crate) fn new(element: S, min_len: usize, max_len: usize) -> Self {
        VecStrategy {
            element,
            min_len,
            max_len: max_len.max(min_len),
        }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.uniform_u128(self.min_len as u128, self.max_len as u128) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// Ranges

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.uniform_u128(self.start as u128, self.end as u128 - 1) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.uniform_u128(*self.start() as u128, *self.end() as u128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuples

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

// ---------------------------------------------------------------------------
// `any` / Arbitrary

/// Types with a canonical "anything goes" strategy, used via [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T`: `any::<bool>()`, `any::<u64>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// String patterns

/// `&str` acts as a string strategy interpreting a small regex subset:
/// sequences of literal characters or character classes (`[a-z0-9_]`, with
/// ranges), each optionally quantified by `{n}`, `{m,n}`, `?`, `*`, or `+`
/// (`*`/`+` cap repetition at 8). This covers patterns like `"[a-z]{0,12}"`
/// used by the workspace's property tests.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let reps = rng.uniform_u128(atom.min as u128, atom.max as u128) as usize;
            for _ in 0..reps {
                let i = rng.uniform_u128(0, atom.chars.len() as u128 - 1) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|off| i + off)
                .expect("unterminated character class in string strategy");
            let class = expand_class(&chars[i + 1..close]);
            i = close + 1;
            class
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        let (min, max) = parse_quantifier(&chars, &mut i);
        atoms.push(PatternAtom {
            chars: alphabet,
            min,
            max,
        });
    }
    atoms
}

fn expand_class(class: &[char]) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            for c in lo..=hi {
                if let Some(c) = char::from_u32(c) {
                    out.push(c);
                }
            }
            i += 3;
        } else {
            out.push(class[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty character class in string strategy");
    out
}

fn parse_quantifier(chars: &[char], i: &mut usize) -> (usize, usize) {
    match chars.get(*i) {
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .map(|off| *i + off)
                .expect("unterminated quantifier in string strategy");
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier lower bound"),
                    hi.trim().parse().expect("bad quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier count");
                    (n, n)
                }
            }
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (4u64..=120).new_value(&mut r);
            assert!((4..=120).contains(&v));
            let w = (0usize..5).new_value(&mut r);
            assert!(w < 5);
            let f = (0.0f64..10.0).new_value(&mut r);
            assert!((0.0..10.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = collection::vec(0u64..=9, 2..7).new_value(&mut r);
            assert!((2..=6).contains(&v.len()));
            assert!(v.iter().all(|&x| x <= 9));
        }
    }

    #[test]
    fn string_pattern_class_and_quantifier() {
        let mut r = rng();
        for _ in 0..500 {
            let s = "[a-z]{0,12}".new_value(&mut r);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let lit = "ab{2}c?".new_value(&mut r);
        assert!(lit == "abbc" || lit == "abb");
    }

    #[test]
    fn combinators_compose() {
        let mut r = rng();
        let strat = (1u64..=10).prop_flat_map(|q| {
            (Just(q), collection::vec(0..=q, 0..4)).prop_map(|(q, v)| (q, v.len()))
        });
        for _ in 0..200 {
            let (q, len) = strat.new_value(&mut r);
            assert!((1..=10).contains(&q));
            assert!(len < 4);
        }
    }

    #[test]
    fn boxed_strategies_unify_types() {
        let mut r = rng();
        let a = (1u64..=3).prop_map(Some).boxed();
        let b = Just(None).boxed();
        for strat in [a, b] {
            let v = strat.new_value(&mut r);
            assert!(v.is_none() || (1..=3).contains(&v.unwrap()));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut r1 = TestRng::for_test("same");
        let mut r2 = TestRng::for_test("same");
        let s = collection::vec(0u64..100, 0..10);
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
        }
    }
}
