//! Offline stand-in for the crates.io
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! The build environment has no network access, so this crate provides the
//! subset of criterion's API the workspace benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a deliberately tiny
//! measurement loop: a short warm-up, then a fixed time budget, reporting
//! median-free mean ns/iter on stdout. It produces honest relative numbers
//! for quick comparisons but none of criterion's statistics, so treat its
//! output as a smoke-level signal until the real crate is restored.
//!
//! Under `cargo test` (which runs `harness = false` bench targets to make
//! sure they still work) each closure is executed exactly once, keeping test
//! runs fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    iters_hint: u64,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Calls `f` repeatedly and records the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (also the only call in smoke mode).
        black_box(f());
        if self.iters_hint <= 1 {
            self.last_ns = 0.0;
            return;
        }
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < budget && iters < self.iters_hint {
            black_box(f());
            iters += 1;
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// Identifies one benchmark within a group, e.g. `grid/1000`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just a parameter, rendered on its own.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Top-level harness state. Construct via `Default` (the macros do).
pub struct Criterion {
    /// 1 in smoke mode (`cargo test`), larger under `cargo bench`.
    iters_hint: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench executables with `--bench`
        // for `cargo bench` and with `--test` (or nothing) for `cargo test`.
        let benching = std::env::args().any(|a| a == "--bench");
        Criterion {
            iters_hint: if benching { u64::MAX } else { 1 },
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher {
            iters_hint: self.iters_hint,
            last_ns: 0.0,
        };
        f(&mut b);
        report(&id.to_string(), b.last_ns, self.iters_hint);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters_hint: self.criterion.iters_hint,
            last_ns: 0.0,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            b.last_ns,
            self.criterion.iters_hint,
        );
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher {
            iters_hint: self.criterion.iters_hint,
            last_ns: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.last_ns,
            self.criterion.iters_hint,
        );
    }

    /// Ends the group (no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

fn report(label: &str, ns_per_iter: f64, iters_hint: u64) {
    if iters_hint <= 1 {
        println!("bench {label:<50} ok (smoke)");
    } else {
        println!("bench {label:<50} {ns_per_iter:>14.0} ns/iter");
    }
}

/// Declares a function that runs each listed benchmark with a fresh
/// [`Criterion`]; mirrors criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups; mirrors criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_apis_run_closures() {
        let mut c = Criterion { iters_hint: 1 };
        let mut ran = 0;
        c.bench_function("solo", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        ran += 1;
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_renders_like_criterion() {
        assert_eq!(BenchmarkId::new("grid", 100).to_string(), "grid/100");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
