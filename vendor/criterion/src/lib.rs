//! Offline stand-in for the crates.io
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! The build environment has no network access, so this crate provides the
//! subset of criterion's API the workspace benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a deliberately tiny
//! measurement loop: a short warm-up, then per-iteration samples within a
//! fixed time budget, reporting the **median** ns/iter on stdout. It
//! produces honest relative numbers for quick comparisons but none of
//! criterion's statistics, so treat its output as a smoke-level signal
//! until the real crate is restored.
//!
//! Under `cargo bench`, each finished [`BenchmarkGroup`] additionally
//! writes `BENCH_<group>.json` at the workspace root — the machine-readable
//! perf baselines the ROADMAP's regression tracking consumes (e.g.
//! `BENCH_planner.json` for the planner's frontier sweep). The file records
//! the median ns, sample count, and the host's available parallelism so a
//! baseline captured on a laptop is not misread against a CI box.
//!
//! Under `cargo test` (which runs `harness = false` bench targets to make
//! sure they still work) each closure is executed exactly once and no JSON
//! is written, keeping test runs fast.

use std::fmt::Display;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum timed iterations per benchmark in bench mode; keeps the median
/// meaningful for closures that outlive the time budget.
const MIN_SAMPLES: usize = 3;

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    iters_hint: u64,
    /// Median nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
    /// Timed iterations behind `last_ns` (0 in smoke mode).
    samples: usize,
}

impl Bencher {
    /// Calls `f` repeatedly, recording the median wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (also the only call in smoke mode).
        black_box(f());
        if self.iters_hint <= 1 {
            self.last_ns = 0.0;
            self.samples = 0;
            return;
        }
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut samples: Vec<f64> = Vec::new();
        while (samples.len() < MIN_SAMPLES || start.elapsed() < budget)
            && (samples.len() as u64) < self.iters_hint
        {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let mid = samples.len() / 2;
        self.last_ns = if samples.len() % 2 == 1 {
            samples[mid]
        } else {
            (samples[mid - 1] + samples[mid]) / 2.0
        };
        self.samples = samples.len();
    }
}

/// Identifies one benchmark within a group, e.g. `grid/1000`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just a parameter, rendered on its own.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// One recorded measurement, destined for the group's JSON baseline.
#[derive(Clone, Debug)]
struct BenchRecord {
    name: String,
    median_ns: f64,
    samples: usize,
}

/// Top-level harness state. Construct via `Default` (the macros do).
pub struct Criterion {
    /// 1 in smoke mode (`cargo test`), larger under `cargo bench`.
    iters_hint: u64,
    /// Measurements accumulated since construction (bench mode only).
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench executables with `--bench`
        // for `cargo bench` and with `--test` (or nothing) for `cargo test`.
        let benching = std::env::args().any(|a| a == "--bench");
        Criterion {
            iters_hint: if benching { u64::MAX } else { 1 },
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks. Finishing the group (in
    /// bench mode) writes its `BENCH_<group>.json` baseline.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let start = self.records.len();
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            start,
        }
    }

    /// Runs a single ungrouped benchmark (reported on stdout only).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher {
            iters_hint: self.iters_hint,
            last_ns: 0.0,
            samples: 0,
        };
        f(&mut b);
        self.record(&id.to_string(), &b);
    }

    fn record(&mut self, label: &str, b: &Bencher) {
        report(label, b.last_ns, self.iters_hint);
        if self.iters_hint > 1 {
            self.records.push(BenchRecord {
                name: label.to_string(),
                median_ns: b.last_ns,
                samples: b.samples,
            });
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    /// Index into `criterion.records` where this group's measurements begin.
    start: usize,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters_hint: self.criterion.iters_hint,
            last_ns: 0.0,
            samples: 0,
        };
        f(&mut b, input);
        self.criterion.record(&format!("{}/{}", self.name, id), &b);
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher {
            iters_hint: self.criterion.iters_hint,
            last_ns: 0.0,
            samples: 0,
        };
        f(&mut b);
        self.criterion.record(&format!("{}/{}", self.name, id), &b);
    }

    /// Ends the group; in bench mode, writes the group's JSON baseline to
    /// `BENCH_<group>.json` at the workspace root.
    pub fn finish(self) {
        if self.criterion.iters_hint <= 1 {
            return;
        }
        let records = &self.criterion.records[self.start..];
        let path = baseline_path(&self.name);
        match std::fs::write(&path, render_json(&self.name, records)) {
            Ok(()) => println!("[baseline] {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

/// `BENCH_<group>.json` at the workspace root, with path separators and
/// other non-identifier characters in the group name flattened to `_`.
fn baseline_path(group: &str) -> PathBuf {
    let sanitized: String = group
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    workspace_root().join(format!("BENCH_{sanitized}.json"))
}

/// The workspace root (two levels above this vendored crate's manifest).
fn workspace_root() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("vendor/criterion lives two levels under the workspace root")
        .to_path_buf()
}

/// Hand-rolled JSON: the vendored workspace has no serde, and the schema is
/// three scalar fields per benchmark.
fn render_json(group: &str, records: &[BenchRecord]) -> String {
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"group\": \"{}\",\n", escape(group)));
    out.push_str("  \"unit\": \"ns\",\n");
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"samples\": {}}}{comma}\n",
            escape(&r.name),
            r.median_ns,
            r.samples
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect()
}

fn report(label: &str, ns_per_iter: f64, iters_hint: u64) {
    if iters_hint <= 1 {
        println!("bench {label:<50} ok (smoke)");
    } else {
        println!("bench {label:<50} {ns_per_iter:>14.0} ns/iter (median)");
    }
}

/// Declares a function that runs each listed benchmark with a fresh
/// [`Criterion`]; mirrors criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups; mirrors criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_apis_run_closures() {
        let mut c = Criterion {
            iters_hint: 1,
            records: Vec::new(),
        };
        let mut ran = 0;
        c.bench_function("solo", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        ran += 1;
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_renders_like_criterion() {
        assert_eq!(BenchmarkId::new("grid", 100).to_string(), "grid/100");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn bench_mode_records_median_samples() {
        let mut c = Criterion {
            iters_hint: u64::MAX,
            records: Vec::new(),
        };
        c.bench_function("timed", |b| b.iter(|| black_box(17u64.pow(3))));
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].samples >= MIN_SAMPLES);
        assert!(c.records[0].median_ns >= 0.0);
    }

    #[test]
    fn json_renders_valid_shape() {
        let records = vec![
            BenchRecord {
                name: "frontier/m=100/threads=1".into(),
                median_ns: 1234.5,
                samples: 10,
            },
            BenchRecord {
                name: "frontier/m=100/threads=4".into(),
                median_ns: 640.0,
                samples: 12,
            },
        ];
        let json = render_json("planner", &records);
        assert!(json.contains("\"group\": \"planner\""));
        assert!(json.contains("\"median_ns\": 1234.5"));
        assert!(json.contains("\"samples\": 12"));
        assert!(json.contains("\"host_cpus\": "));
        // One comma between the two entries, none after the last.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn baseline_path_is_sanitized_at_the_root() {
        let path = baseline_path("a2a/solve");
        assert!(path.ends_with("BENCH_a2a_solve.json"));
        assert!(path.parent().unwrap().join("Cargo.toml").exists());
    }

    #[test]
    fn smoke_mode_records_nothing() {
        let mut c = Criterion {
            iters_hint: 1,
            records: Vec::new(),
        };
        c.bench_function("solo", |b| b.iter(|| black_box(1 + 1)));
        assert!(c.records.is_empty());
    }
}
