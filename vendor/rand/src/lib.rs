//! Offline stand-in for the crates.io [`rand`](https://crates.io/crates/rand)
//! crate, providing exactly the API subset this workspace uses.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched. This stub keeps the same module layout (`rand::rngs::StdRng`,
//! `rand::{Rng, SeedableRng}`) and the 0.9-era method names
//! (`random_range`, `random_bool`, `random`) so workspace code compiles
//! unchanged against either implementation.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded via
//! SplitMix64 — not ChaCha12 like the real `StdRng`, but deterministic,
//! well-distributed, and more than adequate for seeded workload generation.
//! Streams differ from the real crate, so recorded experiment numbers are
//! tied to this stub until the real dependency is restored.

/// Low-level entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand 0.9`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, full range for integers, fair coin for `bool`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open (`lo..hi`) or inclusive
    /// (`lo..=hi`) integer range.
    ///
    /// # Panics
    /// Panics if the range is empty, matching the real crate.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: core::ops::RangeBounds<T>,
        Self: Sized,
    {
        T::sample_range(self, &range)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = self.random();
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types sampleable by [`Rng::random`].
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Integer types usable with [`Rng::random_range`].
pub trait UniformInt: Copy + PartialOrd {
    fn sample_range<R: RngCore, B: core::ops::RangeBounds<Self>>(rng: &mut R, range: &B) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore, B: core::ops::RangeBounds<Self>>(
                rng: &mut R,
                range: &B,
            ) -> Self {
                use core::ops::Bound;
                let lo: u128 = match range.start_bound() {
                    Bound::Included(&v) => v as u128,
                    Bound::Excluded(&v) => v as u128 + 1,
                    Bound::Unbounded => 0,
                };
                let hi: u128 = match range.end_bound() {
                    Bound::Included(&v) => v as u128,
                    Bound::Excluded(&v) => (v as u128)
                        .checked_sub(1)
                        .expect("cannot sample from empty range"),
                    Bound::Unbounded => <$t>::MAX as u128,
                };
                assert!(lo <= hi, "cannot sample from empty range");
                let span = hi - lo + 1;
                // Lemire-style widening reduction; bias is < 2^-64 per draw,
                // irrelevant for the simulation workloads this stub feeds.
                let draw = rng.next_u64() as u128;
                (lo + (draw * span >> 64)) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

pub mod rngs {
    //! Concrete generators (only `StdRng` is provided).

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the stand-in for `rand`'s
    /// `StdRng`. Cheap, high-quality, and fully reproducible from a seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.random_range(10..=20);
            assert!((10..=20).contains(&v));
            let w: usize = rng.random_range(0..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn random_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
